"""Cycle-level PSC operator simulation (paper Figures 1 and 3).

:class:`PscOperator` executes entry jobs on an array of real
:class:`~repro.psc.pe.ProcessingElement` datapaths, one clock at a time:

* the master controller sequences entries and batches;
* input controller 0 streams IL0 windows down the load pipeline (one
  residue per cycle, windows back-to-back);
* input controller 1 broadcasts IL1 windows to all loaded PEs (one residue
  per cycle, every PE scoring in lock-step);
* at each window boundary the slots' result-management modules scan scores
  and emit over-threshold records, which drain through the cascaded FIFO
  path at one record per cycle into the output controller.

Cycle accounting follows :mod:`repro.psc.schedule` exactly (that module is
the shared timing contract with the behavioural model); the drain tail uses
:func:`repro.psc.schedule.drain_completion` over the true arrival cycles.
Scores produced by the PE datapaths are compared against nothing here —
tests assert they match :func:`repro.extend.ungapped.ungapped_score_reference`
and the vectorised kernel bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..hwsim.memory import Rom
from ..obs import metrics as obsmetrics
from .pe import ProcessingElement
from .schedule import (
    ENTRY_OVERHEAD,
    PscArrayConfig,
    ScheduleBreakdown,
    drain_completion,
    publish_run_metrics,
)
from .slot import PESlot
from .workload import EntryJob

__all__ = ["PscOperator", "PscRunResult"]


@dataclass(frozen=True)
class PscRunResult:
    """Output of one operator run over a workload."""

    offsets0: np.ndarray
    offsets1: np.ndarray
    scores: np.ndarray
    breakdown: ScheduleBreakdown
    #: Cycle at which each result entered the FIFO cascade.
    arrival_cycles: np.ndarray

    def __len__(self) -> int:
        return int(self.offsets0.shape[0])

    def seconds(self, config: PscArrayConfig) -> float:
        """Run time at the configured clock."""
        return config.seconds(self.breakdown.total_cycles)


class PscOperator:
    """The full PSC operator: slots of PEs plus controllers."""

    def __init__(self, config: PscArrayConfig) -> None:
        self.config = config
        self.rom = Rom.substitution_rom(config.matrix)
        self.slots: list[PESlot] = []
        for s in range(config.n_slots):
            lo = s * config.slot_size
            hi = min(lo + config.slot_size, config.n_pes)
            self.slots.append(
                PESlot(
                    s,
                    range(lo, hi),
                    config.window,
                    self.rom,
                    config.threshold,
                    config.semantics,
                    config.fifo_depth,
                )
            )
        self.pes: list[ProcessingElement] = [pe for slot in self.slots for pe in slot.pes]

    def run(self, jobs: Iterable[EntryJob]) -> PscRunResult:
        """Execute a workload; returns hits and exact cycle accounting."""
        cfg = self.config
        L = cfg.window
        cycle = 0
        load_cycles = 0
        compute_cycles = 0
        overhead_cycles = 0
        busy = 0
        offered = 0
        hits0: list[int] = []
        hits1: list[int] = []
        hit_scores: list[int] = []
        arrivals: list[int] = []
        slot_busy = [0] * len(self.slots)
        slot_results0 = [slot.results_produced for slot in self.slots]
        for job in jobs:
            # Master controller: entry setup.
            cycle += ENTRY_OVERHEAD
            overhead_cycles += ENTRY_OVERHEAD
            k0 = job.k0
            for batch_lo in range(0, k0, cfg.n_pes):
                batch_hi = min(batch_lo + cfg.n_pes, k0)
                n_active = batch_hi - batch_lo
                # Register-barrier pipeline fill.
                cycle += cfg.batch_overhead
                overhead_cycles += cfg.batch_overhead
                # Initialization phase: input controller 0 streams windows.
                for i in range(n_active):
                    pe = self.pes[i]
                    pe.begin_load()
                    for residue in job.windows0[batch_lo + i]:
                        pe.load_shift(int(residue))
                        cycle += 1
                        load_cycles += 1
                active = self.pes[:n_active]
                for s, slot in enumerate(self.slots):
                    slot_busy[s] += len(slot.active_pes(n_active)) * job.k1 * L
                # Computation phase: input controller 1 broadcasts IL1.
                for j in range(job.k1):
                    w1 = job.windows1[j]
                    for pe in active:
                        pe.begin_compute()
                    finals: list[int | None] = [None] * n_active
                    for t in range(L):
                        residue = int(w1[t])
                        for i, pe in enumerate(active):
                            finals[i] = pe.compute_step(residue)
                        cycle += 1
                        compute_cycles += 1
                    busy += n_active * L
                    offered += cfg.n_pes * L
                    # Window boundary: result-management scan, slot order.
                    for slot in self.slots:
                        slot_scores = [
                            (pe.index, int(finals[pe.index]))
                            for pe in slot.pes
                            if pe.index < n_active
                        ]
                        for rec in slot.scan_results(slot_scores, j):
                            hits0.append(int(job.offsets0[batch_lo + rec.pe_index]))
                            hits1.append(int(job.offsets1[rec.stream_index]))
                            hit_scores.append(rec.score)
                            arrivals.append(cycle)
        schedule_end = cycle
        arrivals_arr = np.array(arrivals, dtype=np.int64)
        drained = drain_completion(arrivals_arr, schedule_end)
        total = drained + cfg.flush_overhead
        breakdown = ScheduleBreakdown(
            load_cycles=load_cycles,
            compute_cycles=compute_cycles,
            overhead_cycles=overhead_cycles,
            schedule_end=schedule_end,
            total_cycles=total,
            busy_pe_cycles=busy,
            offered_pe_cycles=offered,
        )
        self._publish_metrics(breakdown, len(hits0), slot_busy, slot_results0)
        return PscRunResult(
            offsets0=np.array(hits0, dtype=np.int64),
            offsets1=np.array(hits1, dtype=np.int64),
            scores=np.array(hit_scores, dtype=np.int32),
            breakdown=breakdown,
            arrival_cycles=arrivals_arr,
        )

    def _publish_metrics(
        self,
        breakdown: ScheduleBreakdown,
        n_hits: int,
        slot_busy: list[int],
        slot_results0: list[int],
    ) -> None:
        """Array-level counters via the shared contract, plus per-slot detail
        only the cycle simulator can resolve.

        ``results_produced`` is cumulative over the operator's lifetime, so
        the counter gets this run's delta against the *slot_results0*
        snapshot taken at run start.
        """
        publish_run_metrics(self.config, breakdown, n_hits, model="operator")
        registry = obsmetrics.active()
        if registry is None:
            return
        for slot, before in zip(self.slots, slot_results0):
            sid = slot.slot_id
            registry.counter("psc_slot_busy_cycles_total", slot=sid).inc(
                slot_busy[sid]
            )
            registry.counter("psc_slot_results_total", slot=sid).inc(
                slot.results_produced - before
            )
