"""GXP — the gapped-extension operator the paper's conclusion proposes.

After accelerating step 2, the paper observes that gapped extension
dominates (Table 7: 57 % at 30K) and proposes "the design of another
reconfigurable operator dedicated to the computation of similarities
including gap penalty", running concurrently on the blade's second FPGA.
This module implements that proposal as a simulated design:

* each **extension unit** is a systolic band of ``band`` cells computing
  one anti-diagonal of a banded affine-gap local alignment per clock —
  the classic linear-array Smith–Waterman arrangement, restricted to a
  window of ``extent`` residues around the anchor on each sequence;
* an operator instance carries ``n_units`` independent units fed from a
  work FIFO; an extension over windows of lengths *(m, n)* occupies one
  unit for ``m + n + band + UNIT_OVERHEAD`` cycles (wavefront sweep plus
  pipeline fill);
* functionally, a unit's score equals banded Smith–Waterman on the same
  windows (verified against :func:`repro.extend.gapped.smith_waterman`
  in tests); the host keeps final E-value filtering and traceback.

The dual-design deployment (PSC on FPGA 0, GXP on FPGA 1) lives in
:mod:`repro.rasc.dual_design`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..extend.gapped import GapPenalties
from ..extend.ungapped import UngappedHits
from ..seqs.matrices import BLOSUM62, SubstitutionMatrix
from ..seqs.sequence import SequenceBank

__all__ = [
    "GxpConfig",
    "GxpResult",
    "GxpOperator",
    "UNIT_OVERHEAD",
    "wavefront_banded_score",
]

#: Per-extension control/fill cycles charged on a unit.
UNIT_OVERHEAD = 8

_NEG = -(1 << 40)


def wavefront_banded_score(
    a: np.ndarray,
    b: np.ndarray,
    band: int,
    matrix: SubstitutionMatrix = BLOSUM62,
    gaps: GapPenalties = GapPenalties(),
) -> tuple[int, int]:
    """Banded affine local-alignment score by anti-diagonal wavefronts.

    This is the computation order of the systolic unit: the band's cells
    advance one anti-diagonal per clock, each cell holding its (H, E, F)
    state.  Returns ``(score, n_wavefronts)`` where the score equals
    :func:`repro.extend.gapped.smith_waterman` with the same ``band`` (the
    equivalence is asserted by tests) and ``n_wavefronts = m + n - 1`` is
    the cycle count of the sweep.

    State is laid out per band offset ``k = j - i + band`` (2·band + 1
    cells).  Moving from anti-diagonal ``d`` to ``d + 1``, a cell's
    diagonal predecessor sits at the same offset two wavefronts back, its
    vertical predecessor one wavefront back at ``k + 1`` and its
    horizontal predecessor one wavefront back at ``k - 1`` — pure
    neighbour traffic, which is what makes the arrangement systolic.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    m, n = len(a), len(b)
    if m == 0 or n == 0:
        return 0, 0
    go, ge = gaps.open + gaps.extend, gaps.extend
    sub = matrix.scores.astype(np.int64)
    width = 2 * band + 1
    H1 = np.full(width, _NEG, dtype=np.int64)  # wavefront d-1
    H2 = np.full(width, _NEG, dtype=np.int64)  # wavefront d-2
    E1 = np.full(width, _NEG, dtype=np.int64)
    F1 = np.full(width, _NEG, dtype=np.int64)
    best = 0
    for d in range(m + n - 1):
        # Cells on this wavefront: i = (d - (k - band)) / 2 is not integral
        # in this skewed layout; instead enumerate i directly.
        i_lo = max(0, d - n + 1, (d - band + 1) // 2)
        i_hi = min(m - 1, d, (d + band) // 2)
        if i_lo > i_hi:
            H2, H1 = H1, np.full(width, _NEG, dtype=np.int64)
            E1 = np.full(width, _NEG, dtype=np.int64)
            F1 = np.full(width, _NEG, dtype=np.int64)
            continue
        i = np.arange(i_lo, i_hi + 1, dtype=np.int64)
        j = d - i
        valid = np.abs(i - j) <= band
        i, j = i[valid], j[valid]
        if i.size == 0:
            H2, H1 = H1, np.full(width, _NEG, dtype=np.int64)
            E1 = np.full(width, _NEG, dtype=np.int64)
            F1 = np.full(width, _NEG, dtype=np.int64)
            continue
        k = j - i + band
        diag_prev = np.where(
            (i > 0) & (j > 0), H2[k], np.where((i == 0) | (j == 0), 0, _NEG)
        )
        h_up = np.where(i > 0, H1[np.minimum(k + 1, width - 1)], _NEG)
        f_up = np.where(i > 0, F1[np.minimum(k + 1, width - 1)], _NEG)
        h_left = np.where(j > 0, H1[np.maximum(k - 1, 0)], _NEG)
        e_left = np.where(j > 0, E1[np.maximum(k - 1, 0)], _NEG)
        F_new = np.maximum(h_up - go, f_up - ge)
        E_new = np.maximum(h_left - go, e_left - ge)
        H_new = np.maximum.reduce(
            [diag_prev + sub[a[i], b[j]], E_new, F_new, np.zeros_like(E_new)]
        )
        best = max(best, int(H_new.max()))
        H2 = H1
        H1 = np.full(width, _NEG, dtype=np.int64)
        nE = np.full(width, _NEG, dtype=np.int64)
        nF = np.full(width, _NEG, dtype=np.int64)
        H1[k] = H_new
        nE[k] = E_new
        nF[k] = F_new
        E1, F1 = nE, nF
    return best, m + n - 1


@dataclass(frozen=True)
class GxpConfig:
    """Static configuration of one gapped-extension operator.

    Attributes
    ----------
    n_units:
        Independent systolic extension units on the FPGA.
    band:
        Band half-width in DP cells (array length of one unit).
    extent:
        Residues taken on each side of the anchor per sequence (window of
        ``2·extent`` per sequence, clamped at bank padding).
    """

    n_units: int = 4
    band: int = 32
    extent: int = 128
    clock_hz: float = 100e6
    gaps: GapPenalties = GapPenalties()
    matrix: SubstitutionMatrix = BLOSUM62

    def __post_init__(self) -> None:
        if self.n_units < 1 or self.band < 1 or self.extent < 8:
            raise ValueError("invalid GXP geometry")

    def extension_cycles(self, m: int, n: int) -> int:
        """Cycles one extension occupies a unit: wavefront sweep + fill."""
        return m + n + self.band + UNIT_OVERHEAD

    def seconds(self, cycles: int | float) -> float:
        """Convert cycles to seconds at the design clock."""
        return float(cycles) / self.clock_hz


@dataclass(frozen=True)
class GxpResult:
    """Output of one GXP run."""

    offsets0: np.ndarray
    offsets1: np.ndarray
    scores: np.ndarray  # banded local-alignment scores
    total_cycles: int  # makespan across units
    unit_cycles: np.ndarray  # per-unit busy cycles
    extensions: int

    def __len__(self) -> int:
        return int(self.offsets0.shape[0])

    @property
    def utilization(self) -> float:
        """Mean unit busy fraction over the makespan."""
        if self.total_cycles == 0:
            return 0.0
        return float(self.unit_cycles.mean() / self.total_cycles)


class GxpOperator:
    """Behavioural model of the gapped-extension operator.

    Functional scores are exact banded-SW values on the anchor windows;
    timing follows the per-unit cycle cost with greedy (arrival-order)
    unit assignment, which is what a hardware work FIFO produces.
    """

    def __init__(self, config: GxpConfig | None = None) -> None:
        self.config = config or GxpConfig()

    def run(
        self,
        bank0: SequenceBank,
        bank1: SequenceBank,
        hits: UngappedHits,
        compute_scores: bool = True,
    ) -> GxpResult:
        """Extend every step-2 hit pair on the unit array.

        ``compute_scores=False`` skips the functional DP (timing-only
        mode for large projections); scores are then returned as zeros.
        """
        cfg = self.config
        buf0, buf1 = bank0.buffer, bank1.buffer
        n = len(hits)
        scores = np.zeros(n, dtype=np.int64)
        unit_free = np.zeros(cfg.n_units, dtype=np.int64)
        for i in range(n):
            o0, o1 = int(hits.offsets0[i]), int(hits.offsets1[i])
            lo0 = max(0, o0 - cfg.extent)
            hi0 = min(buf0.shape[0], o0 + cfg.extent)
            lo1 = max(0, o1 - cfg.extent)
            hi1 = min(buf1.shape[0], o1 + cfg.extent)
            m, nn = hi0 - lo0, hi1 - lo1
            unit = int(np.argmin(unit_free))
            unit_free[unit] += cfg.extension_cycles(m, nn)
            if compute_scores:
                scores[i], _ = wavefront_banded_score(
                    buf0[lo0:hi0],
                    buf1[lo1:hi1],
                    band=cfg.band,
                    matrix=cfg.matrix,
                    gaps=cfg.gaps,
                )
        return GxpResult(
            offsets0=hits.offsets0,
            offsets1=hits.offsets1,
            scores=scores,
            total_cycles=int(unit_free.max(initial=0)),
            unit_cycles=unit_free,
            extensions=n,
        )

    def modeled_seconds(self, n_extensions: int, mean_extent: float | None = None) -> float:
        """Timing-only projection for *n_extensions* average extensions."""
        cfg = self.config
        ext = mean_extent if mean_extent is not None else 2 * cfg.extent
        per = cfg.extension_cycles(int(ext), int(ext))
        makespan = -(-n_extensions // cfg.n_units) * per
        return cfg.seconds(makespan)
