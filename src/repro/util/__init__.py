"""Shared utilities: timing and report formatting."""

from .reporting import TextTable, fmt_count, fmt_ratio, fmt_seconds
from .timing import Stopwatch

__all__ = ["TextTable", "fmt_seconds", "fmt_ratio", "fmt_count", "Stopwatch"]
