"""Wall-clock helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch usable as a context manager.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.seconds >= 0
    True
    """

    seconds: float = 0.0
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self) -> Stopwatch:
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += time.perf_counter() - self._t0

    def reset(self) -> None:
        """Zero the accumulator."""
        self.seconds = 0.0
