"""Wall-clock helpers.

:class:`Stopwatch` predates the observability subsystem and is kept as a
thin shim over :class:`repro.obs.trace.Timer` for external users; new code
should use :class:`~repro.obs.trace.Timer` (or a span) directly.
"""

from __future__ import annotations

from ..obs.trace import Timer

__all__ = ["Stopwatch"]


class Stopwatch(Timer):
    """Accumulating stopwatch usable as a context manager.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.seconds >= 0
    True
    """

    def __enter__(self) -> Stopwatch:
        super().__enter__()
        return self
