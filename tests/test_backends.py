"""Step-2 backend registry tests: metadata, resolution, bit-identity.

Every registered backend must produce the same hits, the same scores and
the same emission order as the per-key reference path — the registry's
whole value is that ``--step2-backend`` is purely a speed knob.
"""

import numpy as np
import pytest

from repro.extend.backends import (
    BackendInfo,
    BackendUnavailable,
    backend_names,
    list_backends,
    resolve_backend,
)
from repro.extend.backends.registry import register_backend, temporary_backend
from repro.extend.batched import BatchedUngappedEngine
from repro.extend.ungapped import (
    ScoreSemantics,
    UngappedConfig,
    UngappedExtender,
)
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.seqs.generate import random_protein_bank
from repro.seqs.sequence import Sequence, SequenceBank

ALL_BACKENDS = ("fused", "int16", "batched", "per_key", "scalar")


def make_index(rng, n0=12, n1=16, mean=110, span=3):
    b0 = random_protein_bank(rng, n0, mean_length=mean, name_prefix="q")
    b1 = random_protein_bank(rng, n1, mean_length=mean, name_prefix="s")
    return b0, b1, TwoBankIndex.build(b0, b1, ContiguousSeedModel(span))


def assert_identical_hits(ref, got):
    assert np.array_equal(ref.offsets0, got.offsets0)
    assert np.array_equal(ref.offsets1, got.offsets1)
    assert np.array_equal(ref.scores, got.scores)
    assert got.offsets0.dtype == np.int64
    assert got.scores.dtype == np.int32


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(ALL_BACKENDS) <= set(backend_names())

    def test_priority_order(self):
        infos = list_backends()
        priorities = [b.priority for b in infos]
        assert priorities == sorted(priorities, reverse=True)
        assert infos[0].name == "fused"

    def test_unknown_backend_raises(self):
        cfg = UngappedConfig(w=3, n=4)
        with pytest.raises(BackendUnavailable, match="unknown step-2 backend 'warp'"):
            resolve_backend("warp", cfg)

    def test_auto_resolves_to_highest_priority_available(self):
        resolved = resolve_backend("auto", UngappedConfig(w=3, n=8))
        assert resolved.info.name == "fused"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(
                "batched", description="dup", score_dtype="int32", priority=1
            )(lambda cfg: None)

    def test_metadata_complete(self):
        for info in list_backends():
            assert info.description
            assert info.score_dtype
            assert info.max_batch_pairs is None or info.max_batch_pairs > 0


class TestBitIdentity:
    """Same hits, same scores, same order — every backend, both semantics."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("semantics", list(ScoreSemantics))
    def test_matches_per_key_reference(self, rng, backend, semantics):
        _, _, idx = make_index(rng)
        base = UngappedConfig(w=3, n=8, threshold=18, semantics=semantics)
        ref = UngappedExtender(base).run_per_key(idx)
        cfg = UngappedConfig(
            w=3, n=8, threshold=18, semantics=semantics, backend=backend
        )
        engine = BatchedUngappedEngine(cfg)
        got = engine.run(idx)
        assert len(ref) > 0
        assert_identical_hits(ref, got)
        assert engine.telemetry.backend == backend

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_shared_key_set(self, backend):
        b0 = SequenceBank([Sequence.from_text("q", "AAAAAAAAAA")], pad=32)
        b1 = SequenceBank([Sequence.from_text("s", "WWWWWWWWWW")], pad=32)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        assert idx.n_shared_keys == 0
        cfg = UngappedConfig(w=4, n=4, threshold=1, backend=backend)
        hits = BatchedUngappedEngine(cfg).run(idx)
        assert len(hits) == 0
        assert hits.offsets0.dtype == np.int64
        assert hits.scores.dtype == np.int32

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_single_oversized_entry(self, backend):
        # One shared key, 12×12 = 144 pairs against a 10-pair budget: the
        # giant-entry slicer feeds every backend identical sub-batches.
        b0 = SequenceBank([Sequence.from_text("q", "MKVL" * 12)], pad=32)
        b1 = SequenceBank([Sequence.from_text("s", "MKVL" * 12)], pad=32)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        big = UngappedConfig(w=4, n=4, threshold=10)
        tiny = UngappedConfig(w=4, n=4, threshold=10, pair_chunk=10,
                              backend=backend)
        ref = BatchedUngappedEngine(big).run(idx)
        got = BatchedUngappedEngine(tiny).run(idx)
        assert len(ref) > 0
        assert_identical_hits(ref, got)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_one_residue_windows(self, backend):
        # w=1, n=0: the degenerate single-column window (window == 1).
        rng = np.random.default_rng(5)
        b0 = random_protein_bank(rng, 3, mean_length=30, name_prefix="q")
        b1 = random_protein_bank(rng, 3, mean_length=30, name_prefix="s")
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(1))
        base = UngappedConfig(w=1, n=0, threshold=4)
        ref = UngappedExtender(base).run_per_key(idx)
        cfg = UngappedConfig(w=1, n=0, threshold=4, backend=backend)
        got = BatchedUngappedEngine(cfg).run(idx)
        assert len(ref) > 0
        assert_identical_hits(ref, got)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_window_overrun_raises(self, backend):
        # pad=2 < flank: every backend must reject the out-of-buffer
        # window with the reference kernel's IndexError, not wrap around.
        b0 = SequenceBank([Sequence.from_text("q", "MKVLAW")], pad=2)
        b1 = SequenceBank([Sequence.from_text("s", "MKVLAW")], pad=2)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        cfg = UngappedConfig(w=4, n=8, threshold=1, backend=backend)
        with pytest.raises(IndexError, match="increase pad"):
            BatchedUngappedEngine(cfg).run(idx)


class TestAvailability:
    def _failing_info(self, name, probe=None, factory=None):
        return BackendInfo(
            name=name,
            description="test-only backend",
            score_dtype="int32",
            priority=99,  # above fused: auto must consider it first
            max_batch_pairs=None,
            factory=factory or (lambda cfg: (_ for _ in ()).throw(
                RuntimeError("no device"))),
            probe=probe,
        )

    def test_probe_failure_falls_back_under_auto(self):
        info = self._failing_info(
            "probefail", probe=lambda cfg: "hardware not present"
        )
        with temporary_backend(info):
            resolved = resolve_backend("auto", UngappedConfig(w=3, n=8))
            assert resolved.info.name == "fused"
            with pytest.raises(BackendUnavailable, match="hardware not present"):
                resolve_backend("probefail", UngappedConfig(w=3, n=8))

    def test_factory_failure_falls_back_under_auto(self):
        info = self._failing_info("bornbroken")
        with temporary_backend(info):
            resolved = resolve_backend("auto", UngappedConfig(w=3, n=8))
            assert resolved.info.name == "fused"
            with pytest.raises(BackendUnavailable, match="no device"):
                resolve_backend("bornbroken", UngappedConfig(w=3, n=8))

    def test_accuracy_gate_rejects_wrong_scores(self):
        class WrongKernel:
            def prepare(self, buf0, buf1):
                pass

            def score(self, anchors0, anchors1):
                return np.zeros(anchors0.shape[0], dtype=np.int32)

        info = self._failing_info("allzero", factory=lambda cfg: WrongKernel())
        with temporary_backend(info):
            resolved = resolve_backend("auto", UngappedConfig(w=3, n=8))
            assert resolved.info.name == "fused"
            with pytest.raises(BackendUnavailable, match="accuracy self-check"):
                resolve_backend("allzero", UngappedConfig(w=3, n=8))

    def test_int16_overflow_gate(self):
        # window = 4 + 2*2000 large enough that |score| could exceed int16.
        cfg = UngappedConfig(w=4, n=2000)
        with pytest.raises(BackendUnavailable, match="int16"):
            resolve_backend("int16", cfg)
        # auto still works: fused scans in int32 at any window.
        assert resolve_backend("auto", cfg).info.name == "fused"

    def test_engine_run_with_explicit_bad_backend_raises(self, rng):
        _, _, idx = make_index(rng, n0=4, n1=4)
        cfg = UngappedConfig(w=3, n=8, backend="warp")
        with pytest.raises(BackendUnavailable, match="unknown"):
            BatchedUngappedEngine(cfg).run(idx)
