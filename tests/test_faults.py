"""Fault-injection plan tests: addressing, serialisation, hwsim hooks."""

import numpy as np
import pytest

from repro.core.faults import (
    HWSIM_KINDS,
    SERVICE_KINDS,
    WORKER_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    bank_digest,
)
from repro.hwsim.dma import DmaStream
from repro.hwsim.fifo import SyncFifo, fill
from repro.hwsim.kernel import SimulationError, Simulator


class TestFaultSpec:
    def test_site_classification(self):
        assert FaultSpec(FaultKind.CRASH).site == "worker"
        assert FaultSpec(FaultKind.HANG).site == "worker"
        assert FaultSpec(FaultKind.TRUNCATE).site == "worker"
        assert FaultSpec(FaultKind.CORRUPT_BANK).site == "worker"
        assert FaultSpec(FaultKind.FIFO_OVERFLOW, at_count=3).site == "hwsim"
        assert FaultSpec(FaultKind.DMA_ERROR, at_count=3).site == "hwsim"

    def test_matches_exact_address(self):
        spec = FaultSpec(FaultKind.CRASH, shard=2, attempt=1)
        assert spec.matches(2, 1)
        assert not spec.matches(2, 0)
        assert not spec.matches(1, 1)

    def test_matches_wildcard_shard(self):
        spec = FaultSpec(FaultKind.TRUNCATE, shard=None, attempt=0)
        assert spec.matches(0, 0) and spec.matches(7, 0)
        assert not spec.matches(0, 1)

    def test_matches_wildcard_attempt_is_unrecoverable(self):
        spec = FaultSpec(FaultKind.CRASH, shard=1, attempt=None)
        assert all(spec.matches(1, a) for a in range(5))
        assert not spec.matches(0, 0)

    def test_hwsim_kinds_never_match_workers(self):
        assert not FaultSpec(FaultKind.FIFO_OVERFLOW, shard=0).matches(0, 0)

    def test_dict_roundtrip(self):
        spec = FaultSpec(FaultKind.HANG, shard=3, attempt=None, hang_seconds=1.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FaultSpec fields"):
            FaultSpec.from_dict({"kind": "crash", "sahrd": 1})

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec.from_dict({"kind": "meltdown"})


class TestFaultPlan:
    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            (
                FaultSpec(FaultKind.CRASH, shard=0, attempt=0),
                FaultSpec(FaultKind.HANG, shard=0, attempt=0),
            )
        )
        fault = plan.worker_fault(0, 0)
        assert fault is not None and fault.kind is FaultKind.CRASH
        assert plan.worker_fault(0, 1) is None
        assert plan.worker_fault(1, 0) is None

    def test_specs_normalised_to_tuple(self):
        plan = FaultPlan([FaultSpec(FaultKind.CRASH)])  # list in, tuple out
        assert isinstance(plan.specs, tuple)
        assert len(plan) == 1

    def test_corruption_is_seeded_per_shard(self):
        plan = FaultPlan(seed=7)
        a = plan.corruption(0, 64)
        assert a.dtype == np.uint8 and a.shape == (64,)
        assert np.array_equal(a, plan.corruption(0, 64))
        assert not np.array_equal(a, plan.corruption(1, 64))
        assert not np.array_equal(a, FaultPlan(seed=8).corruption(0, 64))

    def test_json_roundtrip(self):
        plan = FaultPlan(
            (
                FaultSpec(FaultKind.CRASH, shard=1, attempt=0),
                FaultSpec(FaultKind.FIFO_OVERFLOW, at_count=9),
            ),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            FaultPlan.from_json("[1, 2]")

    def test_parse_inline_and_file(self, tmp_path):
        plan = FaultPlan((FaultSpec(FaultKind.TRUNCATE, shard=2),), seed=5)
        assert FaultPlan.parse(plan.to_json()) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="ascii")
        assert FaultPlan.parse(path) == plan
        assert FaultPlan.parse(str(path)) == plan

    def test_random_is_reproducible_and_recoverable(self):
        a = FaultPlan.random(seed=11, shards=4, n_faults=3)
        assert a == FaultPlan.random(seed=11, shards=4, n_faults=3)
        assert a != FaultPlan.random(seed=12, shards=4, n_faults=3)
        assert len(a) == 3
        for spec in a.specs:
            assert spec.kind in WORKER_KINDS
            assert spec.attempt is not None  # never unrecoverable
            assert spec.shard is not None and 0 <= spec.shard < 4

    def test_random_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shards"):
            FaultPlan.random(seed=0, shards=0)

    def test_scaled_replaces_fields(self):
        plan = FaultPlan(seed=1)
        assert plan.scaled(seed=9).seed == 9
        assert plan.seed == 1  # frozen original untouched


class TestServiceFaults:
    def test_kind_partition_is_total(self):
        assert WORKER_KINDS | HWSIM_KINDS | SERVICE_KINDS == frozenset(FaultKind)
        assert not WORKER_KINDS & SERVICE_KINDS
        assert not HWSIM_KINDS & SERVICE_KINDS

    def test_site_classification(self):
        assert FaultSpec(FaultKind.SLOW_CLIENT, request=0).site == "service"
        assert FaultSpec(FaultKind.POOL_DEATH, request=0).site == "service"

    def test_matches_request_addressing(self):
        spec = FaultSpec(FaultKind.POOL_DEATH, request=2)
        assert spec.matches_request(2)
        assert not spec.matches_request(1)
        # wildcard request fires every time
        always = FaultSpec(FaultKind.QUEUE_OVERFLOW)
        assert always.matches_request(0) and always.matches_request(99)

    def test_worker_kinds_never_match_requests(self):
        assert not FaultSpec(FaultKind.CRASH, shard=0).matches_request(0)

    def test_service_kinds_never_match_workers(self):
        assert not FaultSpec(FaultKind.POOL_DEATH, request=0).matches(0, 0)

    def test_service_fault_filters_by_kind(self):
        plan = FaultPlan(
            (
                FaultSpec(FaultKind.QUEUE_OVERFLOW, request=1),
                FaultSpec(FaultKind.POOL_DEATH, request=1),
            )
        )
        hit = plan.service_fault(1, FaultKind.POOL_DEATH)
        assert hit is not None and hit.kind is FaultKind.POOL_DEATH
        assert plan.service_fault(1, FaultKind.CORRUPT_WARM_BANK) is None
        assert plan.service_fault(0, FaultKind.POOL_DEATH) is None
        # unfiltered: first match in plan order
        first = plan.service_fault(1)
        assert first is not None and first.kind is FaultKind.QUEUE_OVERFLOW

    def test_service_faults_returns_all_in_order(self):
        plan = FaultPlan(
            (
                FaultSpec(FaultKind.QUEUE_OVERFLOW, request=1),
                FaultSpec(FaultKind.CRASH, shard=0),  # worker kind: excluded
                FaultSpec(FaultKind.SLOW_CLIENT, request=1, hang_seconds=0.5),
            )
        )
        kinds = [s.kind for s in plan.service_faults(1)]
        assert kinds == [FaultKind.QUEUE_OVERFLOW, FaultKind.SLOW_CLIENT]
        assert plan.service_faults(0) == ()

    def test_request_addressed_spec_round_trips(self):
        spec = FaultSpec(FaultKind.SLOW_CLIENT, request=4, hang_seconds=0.25)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        plan = FaultPlan((spec,), seed=17)
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestBankDigest:
    def test_detects_single_bit_flip(self):
        buf = np.arange(256, dtype=np.uint8)
        clean = bank_digest(buf)
        assert clean == bank_digest(buf.copy())
        flipped = buf.copy()
        flipped[100] ^= 1
        assert bank_digest(flipped) != clean

    def test_accepts_non_contiguous_views(self):
        base = np.arange(64, dtype=np.uint8)
        assert bank_digest(base[::2]) == bank_digest(base[::2].copy())


class TestHwsimHooks:
    def test_hook_absent_without_matching_specs(self):
        plan = FaultPlan((FaultSpec(FaultKind.CRASH, shard=0),))
        assert plan.hwsim_hook(FaultKind.FIFO_OVERFLOW) is None
        assert plan.hwsim_hook(FaultKind.DMA_ERROR) is None

    def test_hook_fires_at_count(self):
        plan = FaultPlan(
            (
                FaultSpec(FaultKind.FIFO_OVERFLOW, at_count=2),
                FaultSpec(FaultKind.FIFO_OVERFLOW, at_count=5),
            )
        )
        hook = plan.hwsim_hook(FaultKind.FIFO_OVERFLOW)
        assert hook is not None
        assert [i for i in range(8) if hook(i)] == [2, 5]

    def test_hook_rejects_worker_kinds(self):
        with pytest.raises(ValueError, match="not a simulator fault kind"):
            FaultPlan().hwsim_hook(FaultKind.CRASH)

    def test_fifo_injected_overflow(self):
        plan = FaultPlan((FaultSpec(FaultKind.FIFO_OVERFLOW, at_count=2),))
        fifo = SyncFifo(8, name="in", fault_hook=plan.hwsim_hook(FaultKind.FIFO_OVERFLOW))
        fill(fifo, [10, 11])
        with pytest.raises(SimulationError, match="injected overflow"):
            fifo.push(12)

    def test_fifo_counts_across_commits(self):
        plan = FaultPlan((FaultSpec(FaultKind.FIFO_OVERFLOW, at_count=3),))
        fifo = SyncFifo(8, fault_hook=plan.hwsim_hook(FaultKind.FIFO_OVERFLOW))
        fill(fifo, [0, 1])
        fill(fifo, [2])  # pushes 0..2 committed; next push is event 3
        with pytest.raises(SimulationError, match="fault plan"):
            fifo.push(3)

    def test_dma_injected_transfer_error(self):
        plan = FaultPlan((FaultSpec(FaultKind.DMA_ERROR, at_count=3),))
        sim = Simulator()
        fifo = SyncFifo(16)
        sim.add(
            DmaStream(
                np.arange(8, dtype=np.int32),
                fifo,
                words_per_cycle=2,
                fault_hook=plan.hwsim_hook(FaultKind.DMA_ERROR),
            )
        )
        with pytest.raises(SimulationError, match="injected transfer error at word 3"):
            sim.run_until_idle(max_cycles=100)

    def test_dma_clean_without_hook(self):
        sim = Simulator()
        fifo = SyncFifo(16)
        dma = sim.add(DmaStream(np.arange(8, dtype=np.int32), fifo, words_per_cycle=2))
        sim.run_until_idle(max_cycles=100)
        assert dma.is_idle()
