"""Shared fixtures: small deterministic workloads used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seqs.generate import (
    make_family,
    plant_homologs,
    random_genome,
    random_protein_bank,
)
from repro.seqs.sequence import Sequence, SequenceBank


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_banks():
    """Two small protein banks sharing plenty of seeds (session-cached)."""
    rng = np.random.default_rng(7)
    b0 = random_protein_bank(rng, 12, mean_length=150, name_prefix="q")
    b1 = random_protein_bank(rng, 18, mean_length=150, name_prefix="s")
    return b0, b1


@pytest.fixture(scope="session")
def planted_workload():
    """Queries + genome with planted homologs + ground truth (session-cached).

    3 families × 2 planted members in a 60 knt genome; the family
    ancestors are the queries.
    """
    rng = np.random.default_rng(99)
    families = [make_family(rng, i, 140, 2, identity_range=(0.6, 0.9)) for i in range(3)]
    genome = random_genome(rng, 60_000, name="g")
    genome, truth = plant_homologs(rng, genome, families)
    queries = SequenceBank(
        [Sequence(f"fam{f.family_id}", f.ancestor) for f in families]
    )
    return queries, genome, truth
