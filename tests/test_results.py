"""Result container tests."""

from repro.core.results import Alignment, ComparisonReport


def mk(seq0=0, seq1=0, s0=0, e0=10, s1=0, e1=10, raw=50, ev=1e-5):
    return Alignment(
        seq0_id=seq0,
        seq0_name=f"q{seq0}",
        start0=s0,
        end0=e0,
        seq1_id=seq1,
        seq1_name=f"s{seq1}",
        start1=s1,
        end1=e1,
        raw_score=raw,
        bit_score=raw * 0.4,
        evalue=ev,
    )


class TestAlignment:
    def test_spans(self):
        a = mk(s0=5, e0=25, s1=3, e1=20)
        assert a.span0 == 20
        assert a.span1 == 17

    def test_overlap_same_pair(self):
        a = mk(s0=0, e0=10, s1=0, e1=10)
        b = mk(s0=5, e0=15, s1=5, e1=15)
        assert a.overlaps(b) and b.overlaps(a)

    def test_no_overlap_disjoint_ranges(self):
        a = mk(s0=0, e0=10, s1=0, e1=10)
        b = mk(s0=20, e0=30, s1=20, e1=30)
        assert not a.overlaps(b)

    def test_no_overlap_different_pair(self):
        a = mk(seq1=0)
        b = mk(seq1=1)
        assert not a.overlaps(b)

    def test_overlap_requires_both_axes(self):
        a = mk(s0=0, e0=10, s1=0, e1=10)
        b = mk(s0=5, e0=15, s1=50, e1=60)
        assert not a.overlaps(b)


class TestReport:
    def test_sort_by_evalue_then_score(self):
        r = ComparisonReport(
            alignments=[mk(ev=1e-3, raw=10), mk(ev=1e-9, raw=5), mk(ev=1e-3, raw=99)]
        )
        r.sort()
        assert [a.evalue for a in r] == [1e-9, 1e-3, 1e-3]
        assert r.alignments[1].raw_score == 99

    def test_for_query_filters(self):
        r = ComparisonReport(alignments=[mk(seq0=0), mk(seq0=1), mk(seq0=0)])
        assert len(r.for_query(0)) == 2
        assert len(r.for_query(2)) == 0

    def test_best_truncates(self):
        r = ComparisonReport(alignments=[mk() for _ in range(10)])
        assert len(r.best(3)) == 3

    def test_merged_accumulates(self):
        r1 = ComparisonReport(alignments=[mk(ev=1e-5)], n_seed_pairs=10, n_ungapped_hits=2)
        r2 = ComparisonReport(
            alignments=[mk(ev=1e-8)], n_seed_pairs=20, n_gapped_extensions=3
        )
        m = ComparisonReport.merged([r1, r2])
        assert len(m) == 2
        assert m.n_seed_pairs == 30
        assert m.n_ungapped_hits == 2
        assert m.n_gapped_extensions == 3
        assert m.alignments[0].evalue == 1e-8  # re-sorted

    def test_len_and_iter(self):
        r = ComparisonReport(alignments=[mk(), mk()])
        assert len(r) == 2
        assert len(list(iter(r))) == 2
