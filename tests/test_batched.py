"""Batched step-2 engine tests: equivalence, order, degenerate cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extend.batched import BatchedUngappedEngine, iter_pair_batches
from repro.extend.ungapped import (
    ScoreSemantics,
    UngappedConfig,
    UngappedExtender,
    ungapped_score_reference,
    ungapped_scores_paired,
)
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.seqs.generate import random_protein_bank
from repro.seqs.sequence import Sequence, SequenceBank


def make_index(rng, n0=15, n1=20, mean=120, span=3):
    b0 = random_protein_bank(rng, n0, mean_length=mean, name_prefix="q")
    b1 = random_protein_bank(rng, n1, mean_length=mean, name_prefix="s")
    return b0, b1, TwoBankIndex.build(b0, b1, ContiguousSeedModel(span))


class TestIterPairBatches:
    def entries(self, rng, n=10, kmax=6):
        out = []
        for _ in range(n):
            k0 = int(rng.integers(1, kmax))
            k1 = int(rng.integers(1, kmax))
            out.append(
                (
                    rng.integers(0, 1000, k0).astype(np.int64),
                    rng.integers(0, 1000, k1).astype(np.int64),
                )
            )
        return out

    def test_enumerates_every_pair_in_order(self, rng):
        entries = self.entries(rng)
        expected0 = np.concatenate(
            [np.repeat(o0, o1.shape[0]) for o0, o1 in entries]
        )
        expected1 = np.concatenate(
            [np.tile(o1, o0.shape[0]) for o0, o1 in entries]
        )
        for budget in (1, 3, 7, 10_000):
            batches = list(iter_pair_batches(entries, budget))
            got0 = np.concatenate([b[0] for b in batches])
            got1 = np.concatenate([b[1] for b in batches])
            assert np.array_equal(got0, expected0), budget
            assert np.array_equal(got1, expected1), budget

    def test_budget_respected_where_possible(self, rng):
        entries = self.entries(rng, n=20, kmax=5)
        for p0, p1 in iter_pair_batches(entries, 8):
            # One accumulated entry may overshoot; a batch can never exceed
            # budget + the largest single contribution (kmax² here).
            assert p0.shape[0] <= 8 + 16
            assert p0.shape[0] == p1.shape[0]

    def test_giant_entry_is_sliced(self, rng):
        off0 = rng.integers(0, 1000, 50).astype(np.int64)
        off1 = rng.integers(0, 1000, 7).astype(np.int64)
        batches = list(iter_pair_batches([(off0, off1)], 21))
        # 3 rows of 7 pairs per slice: no batch exceeds the budget.
        assert all(b[0].shape[0] <= 21 for b in batches)
        assert sum(b[0].shape[0] for b in batches) == 350

    def test_empty_and_zero_length_entries_skipped(self):
        e = np.empty(0, dtype=np.int64)
        some = np.arange(3, dtype=np.int64)
        assert list(iter_pair_batches([], 100)) == []
        assert list(iter_pair_batches([(e, some), (some, e)], 100)) == []


class TestBatchedEngine:
    def test_matches_per_key_bit_for_bit(self, rng):
        _, _, idx = make_index(rng)
        cfg = UngappedConfig(w=3, n=8, threshold=20)
        per_key = UngappedExtender(cfg).run_per_key(idx)
        batched = BatchedUngappedEngine(cfg).run(idx)
        assert np.array_equal(per_key.offsets0, batched.offsets0)
        assert np.array_equal(per_key.offsets1, batched.offsets1)
        assert np.array_equal(per_key.scores, batched.scores)
        assert per_key.stats.pairs == batched.stats.pairs
        assert per_key.stats.entries == batched.stats.entries

    def test_batch_budget_invariance(self, rng):
        _, _, idx = make_index(rng)
        base = None
        for chunk in (1, 5, 64, 1 << 20):
            cfg = UngappedConfig(w=3, n=8, threshold=20, pair_chunk=chunk)
            hits = BatchedUngappedEngine(cfg).run(idx)
            if base is None:
                base = hits
            else:
                assert np.array_equal(base.offsets0, hits.offsets0)
                assert np.array_equal(base.scores, hits.scores)

    def test_telemetry_records_batches(self, rng):
        _, _, idx = make_index(rng)
        engine = BatchedUngappedEngine(UngappedConfig(w=3, n=8, pair_chunk=50))
        engine.run(idx)
        t = engine.telemetry
        assert t.batches == len(t.pair_counts) > 1
        assert sum(t.pair_counts) == idx.total_pairs
        assert t.max_batch_pairs >= t.mean_batch_pairs > 0

    def test_empty_shared_key_set(self):
        # Disjoint alphabet usage: no 4-mer occurs in both banks.
        b0 = SequenceBank([Sequence.from_text("q", "AAAAAAAAAA")], pad=32)
        b1 = SequenceBank([Sequence.from_text("s", "WWWWWWWWWW")], pad=32)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        assert idx.n_shared_keys == 0
        cfg = UngappedConfig(w=4, n=4, threshold=1)
        for hits in (
            BatchedUngappedEngine(cfg).run(idx),
            UngappedExtender(cfg).run_per_key(idx),
        ):
            assert len(hits) == 0
            assert hits.offsets0.dtype == np.int64
            assert hits.scores.dtype == np.int32
            assert hits.stats.pairs == hits.stats.hits == 0

    def test_giant_entry_exceeding_budget(self):
        # One shared key, K0=K1=12: 144 pairs against a budget of 10.
        b0 = SequenceBank(
            [Sequence.from_text("q", "MKVL" * 12)], pad=32
        )
        b1 = SequenceBank(
            [Sequence.from_text("s", "MKVL" * 12)], pad=32
        )
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        big = UngappedConfig(w=4, n=4, threshold=10, pair_chunk=1 << 20)
        tiny = UngappedConfig(w=4, n=4, threshold=10, pair_chunk=10)
        ref = BatchedUngappedEngine(big).run(idx)
        sliced = BatchedUngappedEngine(tiny).run(idx)
        assert len(ref) > 0
        assert np.array_equal(ref.offsets0, sliced.offsets0)
        assert np.array_equal(ref.offsets1, sliced.offsets1)
        assert np.array_equal(ref.scores, sliced.scores)

    def test_window_overrun_raises_like_per_key(self):
        # pad=2 < flank: the flanked window leaves the buffer on both the
        # per-key (SequenceBank.windows) and batched (paired kernel) paths.
        b0 = SequenceBank([Sequence.from_text("q", "MKVLAW")], pad=2)
        b1 = SequenceBank([Sequence.from_text("s", "MKVLAW")], pad=2)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        assert idx.n_shared_keys > 0
        cfg = UngappedConfig(w=4, n=8, threshold=1)
        with pytest.raises(IndexError, match="increase pad"):
            UngappedExtender(cfg).run_per_key(idx)
        with pytest.raises(IndexError, match="increase pad"):
            BatchedUngappedEngine(cfg).run(idx)

    def test_paired_kernel_rejects_out_of_buffer_anchors(self, rng):
        buf = rng.integers(0, 20, 64).astype(np.uint8)
        good = np.array([20], dtype=np.int64)
        bad_low = np.array([2], dtype=np.int64)  # 2 - flank < 0
        bad_high = np.array([62], dtype=np.int64)  # + window > 64
        ungapped_scores_paired(buf, good, buf, good, 8, 20)
        for a0, a1 in [(bad_low, good), (good, bad_high)]:
            with pytest.raises(IndexError, match="increase pad"):
                ungapped_scores_paired(buf, a0, buf, a1, 8, 20)


@given(
    st.integers(0, 2**32 - 1),
    st.integers(2, 30),
    st.integers(1, 200),
    st.sampled_from(list(ScoreSemantics)),
)
@settings(max_examples=25, deadline=None)
def test_batched_equals_per_key_equals_reference(seed, n_seqs, chunk, semantics):
    """Property: batched == per-key == scalar oracle on random workloads."""
    rng = np.random.default_rng(seed)
    b0 = random_protein_bank(rng, max(2, n_seqs // 2), mean_length=60,
                             name_prefix="q")
    b1 = random_protein_bank(rng, n_seqs, mean_length=60, name_prefix="s")
    idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))
    cfg = UngappedConfig(
        w=3, n=6, threshold=15, semantics=semantics, pair_chunk=chunk
    )
    per_key = UngappedExtender(cfg).run_per_key(idx)
    batched = BatchedUngappedEngine(cfg).run(idx)
    assert np.array_equal(per_key.offsets0, batched.offsets0)
    assert np.array_equal(per_key.offsets1, batched.offsets1)
    assert np.array_equal(per_key.scores, batched.scores)
    # Spot-check surviving scores against the scalar hardware oracle.
    buf0, buf1 = b0.buffer, b1.buffer
    for r in range(0, len(batched), max(1, len(batched) // 5)):
        a0 = int(batched.offsets0[r]) - cfg.n
        a1 = int(batched.offsets1[r]) - cfg.n
        ref = ungapped_score_reference(
            buf0[a0 : a0 + cfg.window],
            buf1[a1 : a1 + cfg.window],
            cfg.matrix,
            semantics,
        )
        assert batched.scores[r] == ref
