"""tblastn-like baseline tests."""

import numpy as np
import pytest

from repro.baseline.tblastn import TblastnConfig, TblastnSearch, baseline_seconds
from repro.baseline.twohit import TwoHitScanner
from repro.core.pipeline import SeedComparisonPipeline
from repro.rasc.host import HostCostModel
from repro.seqs.generate import random_protein_bank
from repro.seqs.sequence import Sequence, SequenceBank


class TestTwoHitScanner:
    def test_basic_trigger(self):
        s = TwoHitScanner(word_size=3, window=40)
        # Two hits on diagonal 0, 10 apart -> one trigger at the second.
        tq, ts = s.process_block(np.array([0, 10]), np.array([0, 10]))
        assert list(ts) == [10]
        assert s.stats.triggers == 1

    def test_overlapping_hits_do_not_trigger(self):
        s = TwoHitScanner(word_size=3, window=40)
        tq, ts = s.process_block(np.array([0, 2]), np.array([0, 2]))
        assert ts.size == 0

    def test_distant_hits_do_not_trigger(self):
        s = TwoHitScanner(word_size=3, window=40)
        tq, ts = s.process_block(np.array([0, 100]), np.array([0, 100]))
        assert ts.size == 0

    def test_different_diagonals_do_not_trigger(self):
        s = TwoHitScanner()
        tq, ts = s.process_block(np.array([0, 10]), np.array([0, 20]))
        assert ts.size == 0

    def test_cross_block_trigger(self):
        s = TwoHitScanner(word_size=3, window=40)
        s.process_block(np.array([0]), np.array([0]))
        tq, ts = s.process_block(np.array([15]), np.array([15]))
        assert list(ts) == [15]

    def test_reset_clears_state(self):
        s = TwoHitScanner()
        s.process_block(np.array([0]), np.array([0]))
        s.reset()
        tq, ts = s.process_block(np.array([15]), np.array([15]))
        assert ts.size == 0

    def test_three_hits_two_triggers(self):
        s = TwoHitScanner(word_size=3, window=40)
        tq, ts = s.process_block(np.array([0, 10, 20]), np.array([0, 10, 20]))
        assert list(ts) == [10, 20]

    def test_empty_block(self):
        s = TwoHitScanner()
        tq, ts = s.process_block(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert ts.size == 0
        assert s.stats.blocks == 1


class TestTblastnSearch:
    def test_finds_planted_homologs(self, planted_workload):
        queries, genome, truth = planted_workload
        report = TblastnSearch().search_genome(queries, genome)
        assert len(report) >= len(truth)
        assert {a.seq0_name for a in report} == {"fam0", "fam1", "fam2"}

    def test_agrees_with_pipeline_on_strong_hits(self, planted_workload):
        """Both engines implement the same extension stage; on clearly
        homologous regions they must report identical alignments."""
        queries, genome, _ = planted_workload
        bl = TblastnSearch().search_genome(queries, genome)
        sw = SeedComparisonPipeline().compare_with_genome(queries, genome)
        bl_strong = {
            (a.seq0_name, a.seq1_name, a.start1, a.end1, a.raw_score)
            for a in bl
            if a.evalue < 1e-20
        }
        sw_strong = {
            (a.seq0_name, a.seq1_name, a.start1, a.end1, a.raw_score)
            for a in sw
            if a.evalue < 1e-20
        }
        assert bl_strong == sw_strong

    def test_stats_populated(self, planted_workload):
        queries, genome, _ = planted_workload
        search = TblastnSearch()
        search.search_genome(queries, genome)
        s = search.stats
        assert s.word_hits > 0
        assert 0 < s.triggers <= s.word_hits
        assert 0 < s.ungapped_extensions <= s.triggers
        assert 0 < s.gapped_extensions <= s.ungapped_extensions
        assert s.ungapped_cells >= s.ungapped_extensions * 3
        assert s.residues_scanned > 0

    def test_block_size_invariance(self, planted_workload):
        queries, genome, _ = planted_workload
        big = TblastnSearch(TblastnConfig(block_anchors=10**6))
        small = TblastnSearch(TblastnConfig(block_anchors=1000))
        r_big = big.search_genome(queries, genome)
        r_small = small.search_genome(queries, genome)
        key = lambda r: sorted(
            (a.seq0_name, a.seq1_name, a.start1, a.raw_score) for a in r
        )
        assert key(r_big) == key(r_small)

    def test_no_hits_between_unrelated(self, rng):
        q = random_protein_bank(rng, 3, mean_length=80)
        s = random_protein_bank(rng, 3, mean_length=80, name_prefix="db")
        report = TblastnSearch(TblastnConfig(max_evalue=1e-9)).search(q, s)
        assert len(report) == 0

    def test_evalue_filter(self, planted_workload):
        queries, genome, _ = planted_workload
        report = TblastnSearch(TblastnConfig(max_evalue=1e-30)).search_genome(
            queries, genome
        )
        assert all(a.evalue <= 1e-30 for a in report)


class TestBaselineCostModel:
    def test_seconds_positive_and_monotone(self):
        from repro.baseline.tblastn import BaselineStats

        host = HostCostModel()
        s1 = BaselineStats(word_hits=10**6, ungapped_cells=10**5, gapped_cells=10**4,
                           residues_scanned=10**6)
        s2 = BaselineStats(word_hits=10**7, ungapped_cells=10**5, gapped_cells=10**4,
                           residues_scanned=10**6)
        assert 0 < baseline_seconds(s1, host) < baseline_seconds(s2, host)
