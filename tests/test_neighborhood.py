"""BLAST neighbourhood-word table tests."""

import numpy as np

from repro.index.neighborhood import NeighborhoodTable, word_digits
from repro.seqs.alphabet import AMINO
from repro.seqs.matrices import BLOSUM62

# One shared table (construction is the expensive part).
_TABLE = NeighborhoodTable(BLOSUM62, w=3, threshold=11)


def word_key(text: str) -> int:
    codes = AMINO.encode(text)
    return int(codes[0]) * 400 + int(codes[1]) * 20 + int(codes[2])


def word_score(a: str, b: str) -> int:
    ca, cb = AMINO.encode(a), AMINO.encode(b)
    return sum(BLOSUM62.score(int(x), int(y)) for x, y in zip(ca, cb, strict=True))


class TestWordDigits:
    def test_shape(self):
        d = word_digits(2)
        assert d.shape == (400, 2)

    def test_enumeration_order(self):
        d = word_digits(2)
        assert list(d[0]) == [0, 0]
        assert list(d[1]) == [0, 1]
        assert list(d[20]) == [1, 0]
        assert list(d[399]) == [19, 19]


class TestNeighborhoodTable:
    def test_self_neighbour_when_high_scoring(self):
        # WWW self-scores 33 >= 11, so it is its own neighbour.
        www = word_key("WWW")
        assert www in _TABLE.neighbors_of(www)

    def test_low_self_score_word_not_own_neighbour(self):
        # AAA self-scores 12 >= 11, is a neighbour; SSS scores 12 too.
        # GGG self-scores 18. Use a word whose self-score < 11: none for
        # identical triples (min diag 4*3=12) — so check a sub-threshold
        # *pair* instead.
        assert word_key("AAA") not in _TABLE.neighbors_of(word_key("WWW"))

    def test_neighbours_match_bruteforce_for_sample(self):
        for text in ("MKV", "WCH", "AAA", "LLL"):
            w = word_key(text)
            got = set(int(v) for v in _TABLE.neighbors_of(w))
            digits = word_digits(3)
            letters = "ARNDCQEGHILKMFPSTWYV"
            expected = set()
            for v in range(8000):
                other = "".join(letters[d] for d in digits[v])
                if word_score(text, other) >= 11:
                    expected.add(v)
            assert got == expected, text

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        for w in rng.integers(0, 8000, size=25):
            for v in _TABLE.neighbors_of(int(w))[:10]:
                assert int(w) in _TABLE.neighbors_of(int(v))

    def test_mean_neighbors_in_blast_range(self):
        # BLAST documentation: a few dozen neighbours per word at T=11.
        assert 10 < _TABLE.mean_neighbors() < 100

    def test_higher_threshold_shrinks_table(self):
        t13 = NeighborhoodTable(BLOSUM62, w=2, threshold=13)
        t8 = NeighborhoodTable(BLOSUM62, w=2, threshold=8)
        assert t13.neighbor_counts().sum() < t8.neighbor_counts().sum()

    def test_memory_accounting(self):
        assert _TABLE.memory_bytes() > 0
