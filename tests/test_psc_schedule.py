"""PSC schedule / timing contract tests."""

import numpy as np
import pytest

from repro.psc.schedule import (
    ENTRY_OVERHEAD,
    PscArrayConfig,
    batch_sizes,
    drain_completion,
    entry_cycles,
    occupancy,
    schedule_cycles,
)


class TestConfig:
    def test_n_slots(self):
        assert PscArrayConfig(n_pes=192, slot_size=8).n_slots == 24
        assert PscArrayConfig(n_pes=100, slot_size=8).n_slots == 13

    def test_validation(self):
        with pytest.raises(ValueError):
            PscArrayConfig(n_pes=0)
        with pytest.raises(ValueError):
            PscArrayConfig(window=0)

    def test_seconds_at_clock(self):
        cfg = PscArrayConfig(clock_hz=100e6)
        assert cfg.seconds(100_000_000) == pytest.approx(1.0)


class TestBatching:
    def test_batch_sizes(self):
        assert batch_sizes(10, 4) == [4, 4, 2]
        assert batch_sizes(4, 4) == [4]
        assert batch_sizes(3, 4) == [3]
        assert batch_sizes(0, 4) == []

    def test_entry_cycles_formula(self):
        cfg = PscArrayConfig(n_pes=4, slot_size=2, window=10)
        # k0=6 -> 2 batches; cycles = 8 + 6*10 + 2*(5*10 + 3+4)
        got = entry_cycles(6, 5, cfg)
        assert int(got) == ENTRY_OVERHEAD + 60 + 2 * (50 + cfg.batch_overhead)

    def test_entry_cycles_vectorised(self):
        cfg = PscArrayConfig(n_pes=8, window=28)
        k0 = np.array([1, 8, 9, 100])
        k1 = np.array([5, 5, 5, 5])
        got = entry_cycles(k0, k1, cfg)
        assert got.shape == (4,)
        assert (np.diff(got) > 0).all()


class TestScheduleBreakdown:
    def test_totals_consistent(self):
        cfg = PscArrayConfig(n_pes=8, slot_size=4, window=20)
        k0s = np.array([3, 10, 8])
        k1s = np.array([7, 2, 5])
        b = schedule_cycles(k0s, k1s, cfg)
        per_entry = int(entry_cycles(k0s, k1s, cfg).sum())
        assert b.schedule_end == per_entry
        assert b.total_cycles == per_entry + cfg.flush_overhead
        assert b.load_cycles == int((k0s * 20).sum())

    def test_utilization_bounds(self):
        cfg = PscArrayConfig(n_pes=16, window=28)
        k0s = np.array([1, 2, 4])
        k1s = np.array([10, 10, 10])
        u = occupancy(k0s, k1s, cfg)
        assert 0 < u < 1
        # Full batches -> perfect utilization.
        assert occupancy(np.array([16]), np.array([10]), cfg) == pytest.approx(1.0)

    def test_more_pes_fewer_cycles_when_saturated(self):
        k0s = np.array([500, 300])
        k1s = np.array([50, 80])
        small = schedule_cycles(k0s, k1s, PscArrayConfig(n_pes=64, window=28))
        big = schedule_cycles(k0s, k1s, PscArrayConfig(n_pes=192, window=28))
        assert big.total_cycles < small.total_cycles

    def test_more_pes_useless_when_starved(self):
        """With K0 << P, extra PEs cannot help — the paper's small-bank
        efficiency cliff."""
        k0s = np.array([4, 3, 2])
        k1s = np.array([100, 100, 100])
        t64 = schedule_cycles(k0s, k1s, PscArrayConfig(n_pes=64, slot_size=8)).compute_cycles
        t192 = schedule_cycles(k0s, k1s, PscArrayConfig(n_pes=192, slot_size=8)).compute_cycles
        assert t64 == t192

    def test_empty_workload(self):
        cfg = PscArrayConfig()
        b = schedule_cycles(np.array([], dtype=np.int64), np.array([], dtype=np.int64), cfg)
        assert b.schedule_end == 0
        assert b.utilization == 0.0


class TestDrainCompletion:
    def test_no_arrivals(self):
        assert drain_completion(np.array([], dtype=np.int64), 100) == 100

    def test_sparse_arrivals_hide_in_schedule(self):
        arr = np.array([10, 50, 90])
        assert drain_completion(arr, 1000) == 1000

    def test_burst_spills_past_schedule_end(self):
        # 10 simultaneous arrivals at cycle 95, one drains per cycle.
        arr = np.full(10, 95)
        assert drain_completion(arr, 100) == 105

    def test_single_server_recurrence(self):
        # arrivals at 0,0,0 -> departures 1,2,3.
        assert drain_completion(np.zeros(3, dtype=np.int64), 0) == 3

    def test_matches_naive_simulation(self, rng):
        for _ in range(20):
            arr = np.sort(rng.integers(0, 200, size=rng.integers(1, 40)))
            dep = 0
            for a in arr:
                dep = max(int(a) + 1, dep + 1)
            assert drain_completion(arr, 150) == max(150, dep)
