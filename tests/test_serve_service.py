"""Service-level tests: bit-identity, chaos recovery, drain, metrics.

These run real warm worker pools (small banks, 2 workers) — the serving
analogue of ``tests/test_executor.py``'s end-to-end chaos runs.  The
load-bearing assertion throughout: every request the service *completes*
returns alignments bit-identical to a cold one-shot
``SeedComparisonPipeline.compare_banks`` of the same query bank, whatever
faults were injected around it.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.executor import live_segment_names
from repro.core.faults import FaultKind, FaultPlan, FaultSpec
from repro.core.pipeline import SeedComparisonPipeline
from repro.core.profile import RunHealth
from repro.core.supervisor import DeadlineExceeded
from repro.obs.export import validate_serve_metrics
from repro.obs.metrics import prometheus_text
from repro.seqs.sequence import BankBuilder
from repro.serve import (
    BreakerConfig,
    BreakerState,
    SearchService,
    ServiceConfig,
)

AA = "ACDEFGHIKLMNPQRSTVWY"


def _rand_seq(rng, n):
    return "".join(AA[i] for i in rng.integers(0, 20, n))


@pytest.fixture(scope="module")
def serve_workload():
    """Resident bank + query bank sharing a planted motif (real hits)."""
    rng = np.random.default_rng(11)
    motif = _rand_seq(rng, 60)
    rb = BankBuilder()
    for i in range(10):
        rb.add(f"res{i}", _rand_seq(rng, 50) + motif + _rand_seq(rng, 50))
    qb = BankBuilder()
    for i in range(3):
        qb.add(f"qry{i}", _rand_seq(rng, 20) + motif + _rand_seq(rng, 20))
    return qb.build(), rb.build()


@pytest.fixture(scope="module")
def cold_rows(serve_workload):
    """The ground truth: a cold one-shot single-process run."""
    queries, resident = serve_workload
    report = SeedComparisonPipeline(PipelineConfig(workers=1)).compare_banks(
        queries, resident
    )
    return report_rows(report)


def report_rows(report):
    return [
        (a.seq0_name, a.seq1_name, a.start0, a.end0, a.start1, a.end1,
         a.raw_score, a.ungapped_score, a.bit_score, a.evalue)
        for a in report.alignments
    ]


def response_rows(body):
    return [
        (r["query"], r["subject"], *r["query_range"], *r["subject_range"],
         r["raw_score"], r["ungapped_score"], r["bit_score"], r["evalue"])
        for r in body["alignments"]
    ]


def make_service(serve_workload, fault_plan=None, **service_kw):
    queries, resident = serve_workload
    service_kw.setdefault("workers", 2)
    svc = SearchService(
        PipelineConfig(workers=2),
        resident,
        ServiceConfig(**service_kw),
        fault_plan=fault_plan,
    )
    svc.start(warm=True)
    return svc, queries


class TestBitIdentity:
    def test_warm_pool_matches_cold_run(self, serve_workload, cold_rows):
        svc, queries = make_service(serve_workload)
        try:
            first = svc.submit(queries)
            second = svc.submit(queries)
            assert first["code"] == 200 and second["code"] == 200
            assert response_rows(first) == cold_rows
            assert response_rows(second) == cold_rows
            assert first["n_alignments"] == len(cold_rows)
            assert not first["degraded"]
        finally:
            assert svc.drain(timeout=30)

    def test_degraded_path_matches_cold_run(self, serve_workload, cold_rows):
        svc, queries = make_service(serve_workload)
        try:
            # Force the breaker open: the in-process degraded path must be
            # correct-but-slower, not approximately correct.
            for _ in range(svc.breaker.config.failure_threshold):
                svc.breaker.record_failure()
            assert svc.breaker.state is BreakerState.OPEN
            out = svc.submit(queries)
            assert out["code"] == 200
            assert out["degraded"]
            assert response_rows(out) == cold_rows
        finally:
            svc.drain(timeout=30)

    def test_single_worker_service_matches_cold_run(
        self, serve_workload, cold_rows
    ):
        svc, queries = make_service(serve_workload, workers=1)
        try:
            out = svc.submit(queries)
            assert out["code"] == 200
            assert response_rows(out) == cold_rows
        finally:
            svc.drain(timeout=30)

    def test_max_alignments_truncates_response_not_counts(
        self, serve_workload, cold_rows
    ):
        svc, queries = make_service(serve_workload)
        try:
            out = svc.submit(queries, max_alignments=2)
            assert out["code"] == 200
            assert len(out["alignments"]) == 2
            assert out["n_alignments"] == len(cold_rows)
            assert response_rows(out) == cold_rows[:2]
        finally:
            svc.drain(timeout=30)


class TestPipelineEquivalence:
    def test_compare_against_index_equals_compare_banks(self, serve_workload):
        from repro.index.kmer import BankIndex

        queries, resident = serve_workload
        config = PipelineConfig(workers=1)
        cold = SeedComparisonPipeline(config).compare_banks(queries, resident)
        resident_index = BankIndex(resident, config.seed_model)
        warm = SeedComparisonPipeline(config).compare_against_index(
            queries, resident_index
        )
        assert report_rows(warm) == report_rows(cold)
        assert warm.n_seed_pairs == cold.n_seed_pairs
        assert warm.n_ungapped_hits == cold.n_ungapped_hits


class TestChaos:
    def test_seeded_chaos_recovers_and_stays_bit_identical(
        self, serve_workload, cold_rows
    ):
        plan = FaultPlan(
            seed=2201,
            specs=(
                FaultSpec(kind=FaultKind.POOL_DEATH, request=1),
                FaultSpec(kind=FaultKind.QUEUE_OVERFLOW, request=2),
                FaultSpec(kind=FaultKind.CORRUPT_WARM_BANK, request=3),
            ),
        )
        svc, queries = make_service(serve_workload, fault_plan=plan)
        try:
            outcomes = [svc.submit(queries) for _ in range(5)]
            codes = [o["code"] for o in outcomes]
            assert codes == [200, 200, 429, 200, 200]
            shed = outcomes[2]
            assert shed["status"] == "shed"
            assert shed["retry_after"] == pytest.approx(1.0)
            for out in outcomes:
                if out["code"] == 200:
                    assert response_rows(out) == cold_rows
            # the pool death shows up as an unhealthy run, then recovery
            assert svc.pool.bank_heals == 1
            snap = svc.health_snapshot()
            assert snap["bank_heals"] == 1
            assert snap["pool_alive"]
        finally:
            assert svc.drain(timeout=30)
        assert live_segment_names() == ()

    def test_breaker_trips_and_recovers_under_repeated_pool_death(
        self, serve_workload, cold_rows
    ):
        threshold = 3
        plan = FaultPlan(
            seed=99,
            specs=tuple(
                FaultSpec(kind=FaultKind.POOL_DEATH, request=i)
                for i in range(threshold)
            ),
        )
        # A dwell no slow run can outlast: the open-phase assertions below
        # must observe the breaker before its reset, and wall-clock sleeps
        # made this racy under REPRO_CONTRACTS (slow pool-death requests
        # burned through a short dwell before the degraded submit).  The
        # recovery phase rewinds ``_opened_at`` instead of sleeping.
        dwell = 300.0
        svc, queries = make_service(
            serve_workload,
            fault_plan=plan,
            breaker=BreakerConfig(failure_threshold=threshold, reset_seconds=dwell),
        )
        try:
            for i in range(threshold):
                out = svc.submit(queries)
                assert out["code"] == 200
                assert response_rows(out) == cold_rows
            assert svc.breaker.trips == 1
            # while open: degraded but still bit-identical
            degraded = svc.submit(queries)
            assert degraded["code"] == 200
            assert degraded["degraded"]
            assert response_rows(degraded) == cold_rows
            # after the dwell the half-open probe succeeds and closes it;
            # expire the dwell deterministically rather than sleeping it out
            svc.breaker._opened_at -= dwell
            probe = svc.submit(queries)
            assert probe["code"] == 200
            assert response_rows(probe) == cold_rows
            assert svc.breaker.state is BreakerState.CLOSED
            assert svc.breaker.trips == 1
        finally:
            svc.drain(timeout=30)

    def test_corrupt_warm_bank_heals_via_crc(self, serve_workload, cold_rows):
        svc, queries = make_service(serve_workload)
        try:
            svc.pool.corrupt_staged_bank(request=0)
            assert svc.pool.heal_if_corrupt()
            assert svc.pool.bank_heals == 1
            assert not svc.pool.heal_if_corrupt()  # already pristine
            out = svc.submit(queries)
            assert out["code"] == 200
            assert response_rows(out) == cold_rows
        finally:
            svc.drain(timeout=30)


class TestDeadlines:
    def test_expired_deadline_answers_504(self, serve_workload):
        svc, queries = make_service(serve_workload)
        try:
            out = svc.submit(queries, deadline_seconds=0.0)
            assert out["code"] == 504
            assert out["status"] == "deadline"
        finally:
            svc.drain(timeout=30)

    def test_deadline_miss_leaves_survivors_bit_identical(
        self, serve_workload, cold_rows
    ):
        svc, queries = make_service(serve_workload)
        try:
            missed = svc.submit(queries, deadline_seconds=0.0)
            assert missed["code"] == 504
            # the cancelled request must not poison the warm state: the
            # next request is served and bit-identical
            survivor = svc.submit(queries)
            assert survivor["code"] == 200
            assert response_rows(survivor) == cold_rows
            # a client's aggressive deadline alone must not trip the breaker
            assert svc.breaker.trips == 0
        finally:
            svc.drain(timeout=30)

    def test_default_deadline_from_config(self, serve_workload):
        svc, queries = make_service(
            serve_workload, default_deadline_seconds=0.0
        )
        try:
            out = svc.submit(queries)
            assert out["code"] == 504
        finally:
            svc.drain(timeout=30)

    def test_mid_run_deadline_with_healthy_pool_spares_breaker(
        self, serve_workload
    ):
        # A deadline that expires *after* dispatch (not caught by the
        # pre-dispatch expiry check) with a healthy pool is purely the
        # client's miss: it must record a breaker success, never a
        # failure counting toward the trip threshold.
        svc, queries = make_service(serve_workload)

        def expire_mid_run(ticket, use_pool):
            svc.pool.last_health = RunHealth(shards=2)
            raise DeadlineExceeded(
                "request deadline expired during gapped extension",
                svc.pool.last_health,
                (),
            )

        svc._run = expire_mid_run
        try:
            out = svc.submit(queries, deadline_seconds=30.0)
            assert out["code"] == 504
            assert svc.breaker.trips == 0
            assert svc.breaker.state is BreakerState.CLOSED
            assert svc.breaker._consecutive_failures == 0
        finally:
            svc.drain(timeout=30)

    def test_mid_run_deadline_with_pool_fault_counts_failure(
        self, serve_workload
    ):
        # The same mid-run expiry caused by a real pool fault must count:
        # with a threshold of 1 it trips the breaker outright.
        svc, queries = make_service(
            serve_workload,
            breaker=BreakerConfig(failure_threshold=1, reset_seconds=300.0),
        )

        def crash_mid_run(ticket, use_pool):
            svc.pool.last_health = RunHealth(shards=2, crashes=1)
            raise DeadlineExceeded(
                "run deadline expired with 1 shard(s) unfinished",
                svc.pool.last_health,
                (1,),
            )

        svc._run = crash_mid_run
        try:
            out = svc.submit(queries, deadline_seconds=30.0)
            assert out["code"] == 504
            assert svc.breaker.trips == 1
            assert svc.breaker.state is BreakerState.OPEN
        finally:
            svc.drain(timeout=30)

    def test_deadline_outlasting_max_wait_is_served_not_500(
        self, serve_workload, cold_rows
    ):
        # The handler parks min(max_wait, deadline) + grace on its
        # ticket: with a tiny max_wait but a generous grace, a dispatch
        # slower than max_wait must still answer 200, not a spurious
        # "dispatcher unresponsive" 500.
        svc, queries = make_service(
            serve_workload, max_wait_seconds=0.05, deadline_grace_seconds=60.0
        )
        real_handle = svc._handle

        def slow_handle(ticket):
            time.sleep(0.3)
            real_handle(ticket)

        svc._handle = slow_handle
        try:
            out = svc.submit(queries, deadline_seconds=30.0)
            assert out["code"] == 200
            assert response_rows(out) == cold_rows
        finally:
            svc.drain(timeout=30)


class TestDrain:
    def test_drain_releases_everything_and_rejects_new_work(
        self, serve_workload
    ):
        svc, queries = make_service(serve_workload)
        served = svc.submit(queries)
        assert served["code"] == 200
        assert live_segment_names() != ()  # staged bank is resident
        assert svc.drain(timeout=30)
        assert live_segment_names() == ()  # no shm leak after drain
        assert not svc.pool.pool_alive
        late = svc.submit(queries)
        assert late["code"] == 503
        assert not svc.ready
        # drain is idempotent
        assert svc.drain(timeout=5)

    def test_drain_cannot_race_a_just_dequeued_request(
        self, serve_workload, cold_rows
    ):
        # Regression: drain() used to sample "queue empty and not busy"
        # without coordination, so in the window between the dispatcher
        # dequeuing a ticket and setting _busy it could declare the
        # service idle and close the pool under the live request.  The
        # dequeue now happens inside the dispatch lock drain samples
        # under, so that window is unobservable.
        svc, queries = make_service(serve_workload)
        in_window = threading.Event()
        release = threading.Event()
        real_take = svc.queue.take_nowait

        def gated_take():
            ticket = real_take()
            if ticket is not None:
                in_window.set()
                release.wait(timeout=30)
            return ticket

        svc.queue.take_nowait = gated_take
        out = []
        worker = threading.Thread(
            target=lambda: out.append(svc.submit(queries))
        )
        worker.start()
        try:
            assert in_window.wait(timeout=30)
            # The ticket is out of the queue and _busy is not yet set —
            # exactly the old race window.  It sits inside the dispatch
            # lock, so drain's idle sample cannot run here:
            acquired = svc._dispatch_lock.acquire(timeout=0.2)
            if acquired:  # pragma: no cover - the regression itself
                svc._dispatch_lock.release()
            assert not acquired
            drained = []
            drainer = threading.Thread(
                target=lambda: drained.append(svc.drain(timeout=30))
            )
            drainer.start()
            release.set()
            drainer.join(timeout=60)
            worker.join(timeout=60)
            assert drained == [True]
            # the just-dequeued request was finished, not cut off
            assert out and out[0]["code"] == 200
            assert response_rows(out[0]) == cold_rows
        finally:
            release.set()
            svc.drain(timeout=5)


class TestMetricsSurface:
    def test_exposition_matches_schema_after_traffic(
        self, serve_workload
    ):
        plan = FaultPlan(
            seed=5,
            specs=(FaultSpec(kind=FaultKind.QUEUE_OVERFLOW, request=1),),
        )
        svc, queries = make_service(serve_workload, fault_plan=plan)
        try:
            assert svc.submit(queries)["code"] == 200
            assert svc.submit(queries)["code"] == 429
            text = prometheus_text(svc.registry)
            assert validate_serve_metrics(text) == []
            assert 'serve_requests_total{status="ok"} 1' in text
            assert 'serve_requests_total{status="shed"} 1' in text
            assert "serve_shed_total 1" in text
            assert "serve_breaker_state 0" in text
        finally:
            svc.drain(timeout=30)

    def test_full_surface_present_from_boot(self, serve_workload):
        svc, _ = make_service(serve_workload)
        try:
            text = prometheus_text(svc.registry)
            for family in (
                "serve_shed_total",
                "serve_queue_depth",
                "serve_queue_wait_seconds",
                "serve_request_seconds",
                "serve_breaker_state",
                "serve_breaker_trips_total",
                "serve_degraded_requests_total",
                "serve_bank_heals_total",
            ):
                assert f"# TYPE {family} " in text
        finally:
            svc.drain(timeout=30)

    def test_health_snapshot_shape(self, serve_workload):
        svc, _ = make_service(serve_workload)
        try:
            snap = svc.health_snapshot()
            assert snap["ok"] and snap["ready"]
            assert snap["breaker"] == "closed"
            assert snap["pool_alive"]
            assert isinstance(snap["live_segments"], (list, tuple))
            assert len(snap["live_segments"]) == 1
        finally:
            svc.drain(timeout=30)
