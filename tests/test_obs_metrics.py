"""Metrics tests: primitives, merge algebra, determinism, exposition golden."""

import pytest

from repro.obs import metrics as obsmetrics
from repro.obs.metrics import (
    PAIR_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)
from repro.util.reporting import fractions


@pytest.fixture(autouse=True)
def _no_ambient_registry():
    obsmetrics.reset()
    yield
    obsmetrics.reset()


class TestPrimitives:
    def test_counter_adds_and_rejects_negative(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ValueError, match=">= 0"):
            c.inc(-1)
        other = Counter(value=4.0)
        c.merge(other)
        assert c.value == pytest.approx(7.5)

    def test_gauge_set_max_and_merge_keep_high_water(self):
        g = Gauge()
        g.set(5.0)
        g.set_max(3.0)
        assert g.value == 5.0
        g.set(2.0)  # plain set may lower
        g.merge(Gauge(value=4.0))
        assert g.value == 4.0

    def test_histogram_buckets_are_le_inclusive(self):
        h = Histogram(boundaries=(1.0, 4.0, 16.0))
        for v in (1.0, 2.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 0, 1]  # 1.0 lands in le=1, 100 overflows
        assert h.total == pytest.approx(103.0)
        assert h.samples == 3

    def test_histogram_validates_shape(self):
        with pytest.raises(ValueError, match="sorted ascending"):
            Histogram(boundaries=(4.0, 1.0))
        with pytest.raises(ValueError, match="length mismatch"):
            Histogram(boundaries=(1.0, 2.0), counts=[0, 0])

    def test_histogram_merge_requires_equal_boundaries(self):
        a = Histogram(boundaries=(1.0, 4.0))
        a.observe(2.0)
        b = Histogram(boundaries=(1.0, 4.0))
        b.observe(8.0)
        a.merge(b)
        assert a.counts == [0, 1, 1] and a.samples == 2
        with pytest.raises(ValueError, match="different boundaries"):
            a.merge(Histogram(boundaries=(1.0, 2.0)))

    def test_default_buckets_fixed_and_sorted(self):
        assert PAIR_BUCKETS[0] == 1.0 and len(PAIR_BUCKETS) == 13
        assert tuple(sorted(PAIR_BUCKETS)) == PAIR_BUCKETS


def shard_registry(pairs: int, hits: int, high_water: int) -> MetricsRegistry:
    """A deterministic stand-in for one worker's metrics."""
    r = MetricsRegistry()
    r.counter("step2_pairs_total").inc(pairs)
    r.counter("step2_hits_total", engine="batched").inc(hits)
    r.gauge("fifo_high_water", fifo="results").set_max(high_water)
    h = r.histogram("step2_batch_pairs")
    for v in (1, pairs, pairs * 3):
        h.observe(float(v))
    return r


class TestRegistry:
    def test_same_name_and_labels_is_one_series(self):
        r = MetricsRegistry()
        assert r.counter("x", a=1) is r.counter("x", a=1)
        assert r.counter("x", a=1) is not r.counter("x", a=2)
        assert len(r) == 2

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            r.gauge("x")

    def test_dict_roundtrip(self):
        r = shard_registry(64, 5, 3)
        assert MetricsRegistry.from_dict(r.to_dict()).to_dict() == r.to_dict()

    def test_merge_is_order_independent(self):
        shards = [shard_registry(16, 2, 3), shard_registry(64, 7, 9),
                  shard_registry(4, 0, 1)]
        forward = MetricsRegistry()
        for s in shards:
            forward.merge(s)
        backward = MetricsRegistry()
        for s in reversed(shards):
            backward.merge(s.to_dict())  # dict form must merge identically
        assert forward.to_dict() == backward.to_dict()
        assert forward.counter("step2_pairs_total").value == 84.0
        assert forward.gauge("fifo_high_water", fifo="results").value == 9.0
        assert forward.histogram("step2_batch_pairs").samples == 9

    def test_repeated_runs_produce_bit_identical_histograms(self):
        # Fixed boundaries + a deterministic workload: the merged registry
        # (and its exposition) must not vary from run to run.
        def run():
            merged = MetricsRegistry()
            for args in ((16, 2, 3), (64, 7, 9)):
                merged.merge(shard_registry(*args))
            return merged

        a, b = run(), run()
        assert a.to_dict() == b.to_dict()
        assert prometheus_text(a) == prometheus_text(b)


class TestPrometheusText:
    def test_golden_exposition(self):
        r = MetricsRegistry()
        r.counter("pairs_total", engine="batched").inc(7)
        r.gauge("fifo_high_water", fifo="results").set_max(3)
        h = r.histogram("batch_pairs", boundaries=(1.0, 4.0))
        for v in (1.0, 3.0, 9.0):
            h.observe(v)
        assert prometheus_text(r) == (
            "# TYPE batch_pairs histogram\n"
            'batch_pairs_bucket{le="1"} 1\n'
            'batch_pairs_bucket{le="4"} 2\n'
            'batch_pairs_bucket{le="+Inf"} 3\n'
            "batch_pairs_sum 13\n"
            "batch_pairs_count 3\n"
            "# TYPE fifo_high_water gauge\n"
            'fifo_high_water{fifo="results"} 3\n'
            "# TYPE pairs_total counter\n"
            'pairs_total{engine="batched"} 7\n'
        )

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_non_integer_values_keep_full_precision(self):
        r = MetricsRegistry()
        r.counter("seconds_total").inc(0.125)
        assert "seconds_total 0.125" in prometheus_text(r)


class TestModuleHelpers:
    def test_noop_when_inactive(self):
        assert obsmetrics.active() is None
        obsmetrics.inc("x")
        obsmetrics.observe("y", 1.0)
        obsmetrics.gauge_set("z", 1.0)
        obsmetrics.gauge_max("z", 2.0)  # nothing raised, nothing recorded

    def test_helpers_land_on_active_registry(self):
        r = MetricsRegistry()
        with obsmetrics.activate(r):
            obsmetrics.inc("pairs_total", 3, engine="batched")
            obsmetrics.observe("batch_pairs", 2.0)
            obsmetrics.gauge_set("depth", 4.0)
            obsmetrics.gauge_max("depth", 2.0)
        obsmetrics.inc("pairs_total", 99, engine="batched")  # after: inert
        assert r.counter("pairs_total", engine="batched").value == 3.0
        assert r.histogram("batch_pairs").samples == 1
        assert r.gauge("depth").value == 4.0

    def test_activate_none_deactivates(self):
        r = MetricsRegistry()
        with obsmetrics.activate(r):
            with obsmetrics.activate(None):
                obsmetrics.inc("hidden")
        assert len(r) == 0


class TestFractions:
    def test_shares_of_total(self):
        assert fractions((1.0, 1.0, 2.0)) == (0.25, 0.25, 0.5)

    def test_zero_total_is_all_zero(self):
        assert fractions((0.0, 0.0)) == (0.0, 0.0)
        assert fractions(()) == ()
