"""Unit tests for the runtime allocation sanitizer (allocsan)."""

import json

import numpy as np
import pytest

from repro.analysis import allocsan
from repro.analysis.allocsan import (
    ALLOCSAN_ENV,
    ALLOCSAN_OUT_ENV,
    AllocsanRecorder,
    activate,
    allocsan_enabled,
    compare_budgets,
    ensure_recorder,
    load_budget,
    maybe_write_manifest,
    measure,
    write_budget,
)


class TestRecorder:
    def test_note_accumulates_and_manifest_is_sorted(self):
        rec = AllocsanRecorder(meta={"workers": 2})
        rec.note("z.scope", 100, 150)
        rec.note("a.scope", 10, 20)
        rec.note("z.scope", 50, 120)
        manifest = rec.manifest()
        assert manifest["version"] == 1
        assert manifest["meta"] == {"workers": 2}
        assert list(manifest["scopes"]) == ["a.scope", "z.scope"]
        z = manifest["scopes"]["z.scope"]
        assert z == {"calls": 2, "alloc_bytes": 150, "peak_bytes": 150}

    def test_negative_deltas_clamp_to_zero(self):
        # A scope that nets a free (releases more than it allocates) must
        # not drive the accumulated counter negative.
        rec = AllocsanRecorder()
        rec.note("s", -512, -1)
        assert rec.manifest()["scopes"]["s"] == {
            "calls": 1,
            "alloc_bytes": 0,
            "peak_bytes": 0,
        }

    def test_write_is_deterministic(self, tmp_path):
        rec = AllocsanRecorder(meta={"b": 1, "a": 2})
        rec.note("s", 10, 10)
        p1, p2 = tmp_path / "m1.json", tmp_path / "m2.json"
        rec.write(p1)
        rec.write(p2)
        assert p1.read_text() == p2.read_text()
        assert json.loads(p1.read_text())["scopes"]["s"]["alloc_bytes"] == 10


class TestMeasure:
    def test_measure_without_recorder_is_noop(self):
        assert allocsan.active() is None
        with measure("orphan"):
            np.zeros(1024)
        assert allocsan.active() is None

    def test_measure_records_numpy_allocation(self):
        rec = AllocsanRecorder()
        with activate(rec), measure("alloc"):
            buf = np.zeros(1 << 16, dtype=np.int64)
        scope = rec.manifest()["scopes"]["alloc"]
        assert scope["calls"] == 1
        # tracemalloc sees the ~512 KiB backing buffer.
        assert scope["alloc_bytes"] >= (1 << 19)
        assert scope["peak_bytes"] >= scope["alloc_bytes"]
        del buf

    def test_transient_allocation_shows_in_peak_not_alloc(self):
        rec = AllocsanRecorder()
        with activate(rec), measure("transient"):
            tmp = np.zeros(1 << 16, dtype=np.int64)
            del tmp
        scope = rec.manifest()["scopes"]["transient"]
        assert scope["peak_bytes"] >= (1 << 19)
        assert scope["alloc_bytes"] < (1 << 19)

    def test_activate_none_passes_through(self):
        with activate(None) as current:
            assert current is allocsan.active()

    def test_activate_restores_previous_recorder(self):
        outer, inner = AllocsanRecorder(), AllocsanRecorder()
        with activate(outer):
            with activate(inner):
                assert allocsan.active() is inner
            assert allocsan.active() is outer
        assert allocsan.active() is None


class TestEnvGating:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable(self, value, monkeypatch):
        monkeypatch.setenv(ALLOCSAN_ENV, value)
        assert allocsan_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off"])
    def test_falsy_values_disable(self, value, monkeypatch):
        monkeypatch.setenv(ALLOCSAN_ENV, value)
        assert not allocsan_enabled()

    def test_ensure_recorder_disabled(self, monkeypatch):
        monkeypatch.delenv(ALLOCSAN_ENV, raising=False)
        assert ensure_recorder() == (None, False)

    def test_ensure_recorder_creates_when_enabled(self, monkeypatch):
        monkeypatch.setenv(ALLOCSAN_ENV, "1")
        rec, created = ensure_recorder()
        assert isinstance(rec, AllocsanRecorder)
        assert created

    def test_ensure_recorder_reuses_active(self, monkeypatch):
        # A --verify-allocs harness activates its own recorder; nested
        # pipeline runs must fold into it, even with the env unset.
        monkeypatch.delenv(ALLOCSAN_ENV, raising=False)
        harness = AllocsanRecorder()
        with activate(harness):
            rec, created = ensure_recorder()
        assert rec is harness
        assert not created

    def test_maybe_write_manifest(self, tmp_path, monkeypatch):
        rec = AllocsanRecorder()
        rec.note("s", 1, 1)
        monkeypatch.delenv(ALLOCSAN_OUT_ENV, raising=False)
        assert maybe_write_manifest(rec) is None
        out = tmp_path / "manifest.json"
        monkeypatch.setenv(ALLOCSAN_OUT_ENV, str(out))
        assert maybe_write_manifest(rec) == out
        assert json.loads(out.read_text())["scopes"]["s"]["calls"] == 1


class TestBudgets:
    def _manifest(self, **scopes):
        return {
            "version": 1,
            "meta": {},
            "scopes": {
                name: {"calls": c, "alloc_bytes": a, "peak_bytes": p}
                for name, (c, a, p) in scopes.items()
            },
        }

    def test_round_trip(self, tmp_path):
        manifest = self._manifest(s=(1, 100, 200))
        path = tmp_path / "budget.json"
        write_budget(manifest, path)
        assert load_budget(path) == manifest

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "budget.json"
        write_budget({"version": 99, "scopes": {}}, path)
        with pytest.raises(ValueError, match="version"):
            load_budget(path)

    def test_identical_manifests_pass(self):
        m = self._manifest(s=(2, 1000, 2000))
        assert compare_budgets(m, m) == []

    def test_bytes_within_tolerance_pass(self):
        got = self._manifest(s=(1, 1400, 1400))
        want = self._manifest(s=(1, 1000, 1000))
        assert compare_budgets(got, want, tolerance=1.5, slack_bytes=0) == []

    def test_bytes_over_limit_fail(self):
        got = self._manifest(s=(1, 2000, 1000))
        want = self._manifest(s=(1, 1000, 1000))
        problems = compare_budgets(got, want, tolerance=1.5, slack_bytes=0)
        assert len(problems) == 1
        assert "alloc_bytes" in problems[0]

    def test_call_drift_is_exact(self):
        got = self._manifest(s=(3, 100, 100))
        want = self._manifest(s=(2, 100, 100))
        problems = compare_budgets(got, want)
        assert any("batching behaviour drifted" in p for p in problems)

    def test_missing_scopes_fail_both_directions(self):
        got = self._manifest(new=(1, 0, 0))
        want = self._manifest(old=(1, 0, 0))
        problems = compare_budgets(got, want)
        assert any("not in the committed budget" in p for p in problems)
        assert any("never ran" in p for p in problems)

    def test_slack_absorbs_small_jitter(self):
        got = self._manifest(s=(1, 1000 + (1 << 17), 1000))
        want = self._manifest(s=(1, 1000, 1000))
        assert compare_budgets(got, want, tolerance=1.0) == []
