"""Utility module tests."""

import time

import pytest

from repro.util.reporting import TextTable, fmt_count, fmt_ratio, fmt_seconds
from repro.util.timing import Stopwatch


class TestFormatting:
    def test_fmt_seconds_ranges(self):
        assert fmt_seconds(1234.5) == "1,234 s"
        assert fmt_seconds(12.345) == "12.35 s"
        assert fmt_seconds(0.01234) == "12.34 ms"
        assert fmt_seconds(1.2e-5) == "12.0 µs"

    def test_fmt_ratio(self):
        assert fmt_ratio(19.333) == "19.33×"

    def test_fmt_count(self):
        assert fmt_count(1234567) == "1,234,567"
        assert fmt_count(12.5) == "12.50"
        assert fmt_count(12.0) == "12"


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable("demo", ["a", "bb"])
        t.add_row("xxx", 1)
        t.add_row("y", 22222)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "== demo =="
        assert lines[1].startswith("a")
        # Columns aligned: 'bb' header starts where values start.
        assert lines[2].startswith("-")
        assert "xxx" in lines[3] and "22222" in lines[4]

    def test_wrong_cell_count(self):
        t = TextTable("demo", ["a", "b"])
        with pytest.raises(ValueError, match="expected 2"):
            t.add_row("only-one")

    def test_notes_rendered(self):
        t = TextTable("demo", ["a"])
        t.add_row("x")
        t.add_note("hello")
        assert "note: hello" in t.render()


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.seconds
        with sw:
            time.sleep(0.01)
        assert sw.seconds > first >= 0.005

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.seconds == 0.0
