"""Workload partitioning tests (2-FPGA experiment substrate)."""

import numpy as np
import pytest

from repro.core.partition import partition_imbalance, split_bank, split_entries
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.seqs.generate import random_protein_bank


class TestSplitBank:
    def test_all_sequences_kept(self, rng):
        bank = random_protein_bank(rng, 50)
        parts = split_bank(bank, 3)
        assert sum(len(p) for p in parts) == 50
        names = sorted(n for p in parts for n in p.names)
        assert names == sorted(bank.names)

    def test_residue_balance(self, rng):
        bank = random_protein_bank(rng, 100)
        parts = split_bank(bank, 2)
        loads = np.array([p.total_residues for p in parts], dtype=float)
        assert partition_imbalance(loads) < 1.1

    def test_single_part_identity(self, rng):
        bank = random_protein_bank(rng, 5)
        assert split_bank(bank, 1)[0] is bank

    def test_invalid_parts(self, rng):
        with pytest.raises(ValueError):
            split_bank(random_protein_bank(rng, 5), 0)

    def test_more_parts_than_sequences(self, rng):
        bank = random_protein_bank(rng, 3)
        parts = split_bank(bank, 5)
        assert sum(len(p) for p in parts) == 3
        assert len(parts) == 5  # some empty


class TestSplitEntries:
    def make_index(self, rng):
        b0 = random_protein_bank(rng, 20, mean_length=120)
        b1 = random_protein_bank(rng, 20, mean_length=120)
        return TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))

    def test_every_entry_assigned_once(self, rng):
        idx = self.make_index(rng)
        buckets = split_entries(idx, 4)
        seen = np.concatenate(buckets)
        assert sorted(seen.tolist()) == list(range(idx.n_shared_keys))

    def test_pair_balance(self, rng):
        idx = self.make_index(rng)
        counts = idx.pair_counts()
        buckets = split_entries(idx, 2)
        loads = np.array([counts[b].sum() for b in buckets], dtype=float)
        assert partition_imbalance(loads) < 1.5

    def test_invalid_parts(self, rng):
        with pytest.raises(ValueError):
            split_entries(self.make_index(rng), -1)


class TestImbalance:
    def test_perfect(self):
        assert partition_imbalance(np.array([5.0, 5.0])) == 1.0

    def test_skewed(self):
        assert partition_imbalance(np.array([9.0, 1.0])) == pytest.approx(1.8)

    def test_empty(self):
        assert partition_imbalance(np.array([])) == 1.0
