"""Runtime lockset sanitizer tests: recorder, wrappers, cross-check."""

import json
import threading

from repro.analysis import locksan


class _StubModel:
    def __init__(self, guards=None, edges=None):
        self._guards = dict(guards or {})
        self.order_edges = dict(edges or {})

    def guarded_fields(self, scope):
        return dict(self._guards)


class _StubAnalysis:
    def __init__(self, guards=None, edges=None):
        self.model = _StubModel(guards, edges)


class TestFactorySeam:
    def test_plain_primitives_without_env(self, monkeypatch):
        monkeypatch.delenv(locksan.LOCKSAN_ENV, raising=False)
        lock = locksan.make_lock("m.C._lock")
        assert type(lock) is type(threading.Lock())
        assert not hasattr(lock, "name")
        # touch without a recorder is a no-op, never an error
        locksan.touch("m.C.field", write=True)

    def test_instrumented_wrappers_with_env(self, monkeypatch):
        monkeypatch.setenv(locksan.LOCKSAN_ENV, "1")
        rec = locksan.LocksanRecorder()
        with locksan.activate(rec):
            lock = locksan.make_lock("m.C._lock")
            assert lock.name == "m.C._lock"
            with lock:
                locksan.touch("m.C.field", write=True)
        manifest = rec.manifest()
        assert manifest["locks"] == ["m.C._lock"]
        assert manifest["fields"]["m.C.field"]["candidates"] == ["m.C._lock"]

    def test_ensure_recorder_installs_one_global(self, monkeypatch):
        monkeypatch.setenv(locksan.LOCKSAN_ENV, "1")
        monkeypatch.setattr(locksan, "_ACTIVE", None)
        rec, created = locksan.ensure_recorder()
        assert created and rec is locksan.active()
        again, created_again = locksan.ensure_recorder()
        assert again is rec and not created_again
        monkeypatch.setattr(locksan, "_ACTIVE", None)


class TestEraserRefinement:
    def test_consistent_discipline_survives_two_threads(self):
        rec = locksan.LocksanRecorder()
        with locksan.activate(rec):
            lock = locksan._SanLock("m.C._lock")

            def worker():
                with lock:
                    locksan.touch("m.C.x", write=True)

            with lock:
                locksan.touch("m.C.x", write=True)
            t = threading.Thread(target=worker, name="w")
            t.start()
            t.join()
        entry = rec.manifest()["fields"]["m.C.x"]
        assert entry["candidates"] == ["m.C._lock"]
        assert entry["violations"] == []
        assert len(entry["threads"]) == 2

    def test_lock_free_shared_write_is_a_violation(self):
        rec = locksan.LocksanRecorder()
        with locksan.activate(rec):
            lock = locksan._SanLock("m.C._lock")
            with lock:
                locksan.touch("m.C.x", write=True)  # candidates {_lock}

            def worker():
                locksan.touch("m.C.x", write=True)  # bare: candidates -> {}

            t = threading.Thread(target=worker, name="w")
            t.start()
            t.join()
        entry = rec.manifest()["fields"]["m.C.x"]
        assert entry["candidates"] == []
        assert entry["violations"]
        assert entry["violations"][0]["thread"] == "w"

    def test_single_thread_empty_lockset_is_not_a_violation(self):
        # Eraser's point: confinement to one thread needs no lock.
        rec = locksan.LocksanRecorder()
        with locksan.activate(rec):
            locksan.touch("m.C.y", write=True)
            locksan.touch("m.C.y", write=True)
        entry = rec.manifest()["fields"]["m.C.y"]
        assert entry["candidates"] == []
        assert entry["violations"] == []


class TestWrappers:
    def test_order_edges_record_nesting(self):
        rec = locksan.LocksanRecorder()
        with locksan.activate(rec):
            outer = locksan._SanLock("m.A")
            inner = locksan._SanLock("m.B")
            with outer:
                with inner:
                    pass
        assert rec.manifest()["order"] == {"m.A": ["m.B"]}

    def test_rlock_records_outermost_acquire_only(self):
        rec = locksan.LocksanRecorder()
        with locksan.activate(rec):
            rl = locksan._SanRLock("m.R")
            other = locksan._SanLock("m.B")
            with rl:
                with rl:  # re-entrant: must not push a second lockset entry
                    with other:
                        locksan.touch("m.C.z")
        manifest = rec.manifest()
        assert manifest["fields"]["m.C.z"]["candidates"] == ["m.B", "m.R"]
        assert manifest["order"] == {"m.R": ["m.B"]}

    def test_condition_wait_releases_the_lockset_across_the_park(self):
        rec = locksan.LocksanRecorder()
        observed = []
        with locksan.activate(rec):
            cond = locksan._SanCondition("m.C._cond")
            done = threading.Event()

            def waiter():
                with cond:
                    while not done.is_set():
                        if cond.wait(timeout=5.0):
                            break

            def kicker():
                # The waiter is parked inside wait(): its lockset must not
                # contain the condition, or this acquire would be recorded
                # as contended reentrancy rather than a clean handoff.
                with cond:
                    observed.append(rec.manifest()["order"])
                    done.set()
                    cond.notify_all()

            t1 = threading.Thread(target=waiter, name="waiter")
            t1.start()
            # Give the waiter a moment to park before kicking it.
            t2 = threading.Thread(target=kicker, name="kicker")
            t2.start()
            t1.join(timeout=10)
            t2.join(timeout=10)
            assert not t1.is_alive() and not t2.is_alive()
        # No self-edge: the condition never appears nested inside itself.
        assert "m.C._cond" not in rec.manifest()["order"].get("m.C._cond", [])


class TestManifestWriting:
    def test_fork_guard_blocks_other_pids(self, tmp_path, monkeypatch):
        out = tmp_path / "locksan.json"
        monkeypatch.setenv(locksan.LOCKSAN_OUT_ENV, str(out))
        rec = locksan.LocksanRecorder()
        rec._pid = rec._pid + 1  # simulate a forked child
        assert locksan.maybe_write_manifest(rec) is None
        assert not out.exists()

    def test_owner_pid_writes_versioned_json(self, tmp_path, monkeypatch):
        out = tmp_path / "locksan.json"
        monkeypatch.setenv(locksan.LOCKSAN_OUT_ENV, str(out))
        rec = locksan.LocksanRecorder(meta={"origin": "test"})
        path = locksan.maybe_write_manifest(rec)
        assert path == out
        data = json.loads(out.read_text())
        assert data["version"] == 1
        assert data["meta"]["origin"] == "test"


class TestCrossCheck:
    def test_clean_manifest_against_matching_guards(self):
        manifest = {
            "fields": {
                "m.C.x": {
                    "threads": ["a", "b"],
                    "candidates": ["m.C._lock"],
                    "reads": 1,
                    "writes": 1,
                    "violations": [],
                }
            },
            "order": {},
        }
        analysis = _StubAnalysis(guards={"m.C.x": {"m.C._lock"}})
        assert locksan.cross_check(manifest, analysis) == []

    def test_runtime_violation_is_reported(self):
        manifest = {
            "fields": {
                "m.C.x": {
                    "threads": ["a", "b"],
                    "candidates": [],
                    "reads": 0,
                    "writes": 2,
                    "violations": [{"thread": "b", "write": True, "held": []}],
                }
            },
            "order": {},
        }
        analysis = _StubAnalysis(guards={"m.C.x": {"m.C._lock"}})
        problems = locksan.cross_check(manifest, analysis)
        assert any("lockset violation" in p for p in problems)

    def test_statically_unguarded_field_is_a_disagreement(self):
        manifest = {
            "fields": {
                "m.C.ghost": {
                    "threads": ["a"],
                    "candidates": ["m.C._lock"],
                    "reads": 1,
                    "writes": 0,
                    "violations": [],
                }
            },
            "order": {},
        }
        problems = locksan.cross_check(manifest, _StubAnalysis())
        assert any("no consistent guard" in p for p in problems)

    def test_disjoint_candidate_and_guard_sets_disagree(self):
        manifest = {
            "fields": {
                "m.C.x": {
                    "threads": ["a"],
                    "candidates": ["m.C._other"],
                    "reads": 1,
                    "writes": 0,
                    "violations": [],
                }
            },
            "order": {},
        }
        analysis = _StubAnalysis(guards={"m.C.x": {"m.C._lock"}})
        problems = locksan.cross_check(manifest, analysis)
        assert any("share\nno lock" in p or "share no lock" in p for p in problems)

    def test_runtime_order_inversion_is_reported(self):
        manifest = {
            "fields": {},
            "order": {"m.A": ["m.B"], "m.B": ["m.A"]},
        }
        problems = locksan.cross_check(manifest, _StubAnalysis())
        assert any("deadlock-capable inversion" in p for p in problems)

    def test_inverting_a_static_only_edge_is_reported(self):
        manifest = {"fields": {}, "order": {"m.A": ["m.B"]}}
        analysis = _StubAnalysis(edges={("m.B", "m.A"): ("f", None)})
        problems = locksan.cross_check(manifest, analysis)
        assert any("static lock graph only orders" in p for p in problems)

    def test_matching_static_order_is_clean(self):
        manifest = {"fields": {}, "order": {"m.A": ["m.B"]}}
        analysis = _StubAnalysis(edges={("m.A", "m.B"): ("f", None)})
        assert locksan.cross_check(manifest, analysis) == []
