"""Full-system (DMA → FIFO → array → cascade) simulation tests."""

import numpy as np
import pytest

from repro.hwsim.kernel import SimulationError
from repro.psc.operator import PscOperator
from repro.psc.schedule import PscArrayConfig
from repro.psc.system import PscSystem
from repro.psc.workload import EntryJob


def make_job(k0=6, k1=30, window=20, seed=0):
    rng = np.random.default_rng(seed)
    return EntryJob(
        key=0,
        offsets0=np.arange(k0, dtype=np.int64),
        offsets1=np.arange(k1, dtype=np.int64),
        windows0=rng.integers(0, 20, (k0, window)).astype(np.uint8),
        windows1=rng.integers(0, 20, (k1, window)).astype(np.uint8),
    )


CFG = PscArrayConfig(n_pes=8, slot_size=4, window=20, threshold=15)


class TestFunctional:
    def test_matches_operator_hits(self):
        job = make_job()
        sys_run = PscSystem(CFG, job).run()
        op_run = PscOperator(CFG).run([job])
        assert len(sys_run.records) == len(op_run)
        got = sorted((r.pe_index, r.stream_index, r.score) for r in sys_run.records)
        want = sorted(
            (int(o0), int(o1), int(s))
            for o0, o1, s in zip(op_run.offsets0, op_run.offsets1, op_run.scores, strict=True)
        )
        assert got == want

    def test_output_in_fifo_order(self):
        job = make_job(seed=3)
        sys_run = PscSystem(CFG, job).run()
        # Records drain in stream-index-major order (cascade preserves
        # per-slot FIFO order; stream windows complete sequentially).
        streams = [r.stream_index for r in sys_run.records]
        assert streams == sorted(streams)

    def test_empty_traffic(self):
        job = make_job()
        cfg = PscArrayConfig(n_pes=8, slot_size=4, window=20, threshold=10**6)
        sys_run = PscSystem(cfg, job).run()
        assert sys_run.records == ()

    def test_multi_batch_rejected(self):
        job = make_job(k0=20)
        with pytest.raises(SimulationError, match="single-batch"):
            PscSystem(CFG, job)


class TestTiming:
    def test_cycles_close_to_ideal_schedule(self):
        """With 1 word/cycle DMA the system tracks the ideal schedule to
        within the pipeline-fill constants."""
        job = make_job()
        sys_run = PscSystem(CFG, job).run()
        ideal = (job.k0 + job.k1) * CFG.window  # load + compute streams
        assert ideal <= sys_run.cycles <= ideal + 64

    def test_slow_dma_stalls_array(self):
        """Halving DMA bandwidth exposes compute stalls — the input-
        bandwidth sensitivity the overlap design avoids."""
        job = make_job(k1=50)

        fast = PscSystem(CFG, job, dma_words_per_cycle=2).run()
        # One word per cycle feeds *two* FIFOs from independent engines, so
        # rate 1 is already sufficient; throttle by interleaving: emulate
        # half-rate DMA with a shared engine serving alternate cycles.
        slow_sys = PscSystem(CFG, job, dma_words_per_cycle=1)
        slow_sys.dma1._rate = 1
        slow = slow_sys.run()
        assert fast.cycles <= slow.cycles

    def test_stall_accounting_consistent(self):
        job = make_job()
        run = PscSystem(CFG, job).run()
        # Total cycles = useful streaming + stalls + drain/startup slack.
        useful = (job.k0 + job.k1) * CFG.window
        slack = run.cycles - useful - run.load_stall_cycles - run.compute_stall_cycles
        assert 0 <= slack <= 64

    def test_cascade_high_water_bounded(self):
        job = make_job(k1=60, seed=5)
        cfg = PscArrayConfig(n_pes=8, slot_size=4, window=20, threshold=1)
        run = PscSystem(cfg, job).run()
        assert 0 < run.cascade_high_water <= cfg.fifo_depth
