"""Command-line interface tests."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workload_files(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli")
    assert (
        main(
            [
                "synth",
                str(d / "w"),
                "--proteins",
                "4",
                "--genome-nt",
                "24000",
                "--families",
                "2",
                "--seed",
                "11",
            ]
        )
        == 0
    )
    return str(d / "w_proteins.fasta"), str(d / "w_genome.fasta")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "q.fa", "g.fa"])
        assert args.evalue == 1e-3
        assert args.flank == 12

    def test_accel_flags(self):
        args = build_parser().parse_args(["accel", "q.fa", "g.fa", "--pes", "64", "--dual"])
        assert args.pes == 64 and args.dual

    @pytest.mark.parametrize("flag", ["--workers", "--batch-pairs"])
    @pytest.mark.parametrize("bad", ["0", "-1", "-7", "two"])
    def test_positive_int_options_rejected(self, flag, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["compare", "q.fa", "g.fa", flag, bad])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert flag in err

    @pytest.mark.parametrize("flag,attr", [("--workers", "workers"), ("--batch-pairs", "batch_pairs")])
    def test_positive_int_options_accepted(self, flag, attr):
        args = build_parser().parse_args(["compare", "q.fa", "g.fa", flag, "3"])
        assert getattr(args, attr) == 3


class TestCommands:
    def test_synth_outputs(self, workload_files, capsys):
        proteins, genome = workload_files
        from repro.seqs.fasta import load_bank

        bank = load_bank(proteins)
        assert len(bank) == 6  # 4 background + 2 family ancestors

    def test_compare_runs(self, workload_files, capsys):
        proteins, genome = workload_files
        assert main(["compare", proteins, genome, "--max-hits", "3"]) == 0
        out = capsys.readouterr().out
        assert "alignments=" in out
        assert "family00" in out  # planted families found

    def test_accel_runs(self, workload_files, capsys):
        proteins, genome = workload_files
        assert main(["accel", proteins, genome, "--pes", "16"]) == 0
        out = capsys.readouterr().out
        assert "modelled:" in out

    def test_baseline_runs(self, workload_files, capsys):
        proteins, genome = workload_files
        assert main(["baseline", proteins, genome]) == 0
        out = capsys.readouterr().out
        assert "word hits=" in out

    def test_simulate_runs(self, capsys):
        assert main(["simulate", "--pes", "4", "--entries", "30", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "PE utilisation" in out
        assert "cycles:" in out


class TestIndexCommand:
    def test_build_and_info(self, workload_files, tmp_path, capsys):
        proteins, _ = workload_files
        idx_path = str(tmp_path / "bank.npz")
        assert main(["index", "build", idx_path, "--fasta", proteins]) == 0
        out = capsys.readouterr().out
        assert "indexed" in out and "anchors" in out
        assert main(["index", "info", idx_path]) == 0
        out = capsys.readouterr().out
        assert "seed model" in out
        assert "keys used" in out

    def test_build_contiguous_model(self, workload_files, tmp_path, capsys):
        proteins, _ = workload_files
        idx_path = str(tmp_path / "c.npz")
        assert main(
            ["index", "build", idx_path, "--fasta", proteins, "--seed", "contiguous:3"]
        ) == 0
        from repro.index.persist import load_index

        assert load_index(idx_path).model.span == 3

    def test_build_requires_fasta(self, tmp_path, capsys):
        # config errors return exit code 2, they do not raise
        assert main(["index", "build", str(tmp_path / "x.npz")]) == 2
        assert "requires --fasta" in capsys.readouterr().err


class TestExitCodes:
    """The exit-code contract from repro.core.errors: 0/2/3/4."""

    def test_ok_is_zero(self, workload_files):
        proteins, genome = workload_files
        assert main(["baseline", proteins, genome]) == 0

    def test_config_error_is_two(self, workload_files, capsys):
        proteins, genome = workload_files
        rc = main(["compare", proteins, genome, "--fault-plan", "{not json"])
        assert rc == 2
        assert "bad --fault-plan" in capsys.readouterr().err

    def test_bad_seed_pattern_is_two(self, workload_files, tmp_path, capsys):
        proteins, _ = workload_files
        rc = main(
            ["index", "build", str(tmp_path / "x.npz"), "--fasta", proteins,
             "--seed", "bogus:nope"]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_input_is_three(self, workload_files, tmp_path, capsys):
        _, genome = workload_files
        rc = main(["compare", str(tmp_path / "missing.fasta"), genome])
        assert rc == 3
        assert "cannot load" in capsys.readouterr().err

    def test_empty_bank_is_three(self, workload_files, tmp_path, capsys):
        _, genome = workload_files
        empty = tmp_path / "empty.fasta"
        empty.write_text("", encoding="ascii")
        assert main(["compare", str(empty), genome]) == 3
        assert "no sequences" in capsys.readouterr().err

    def test_bind_failure_is_four(self, workload_files, capsys):
        import socket

        proteins, _ = workload_files
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as blocker:
            blocker.bind(("127.0.0.1", 0))
            taken = blocker.getsockname()[1]
            rc = main(
                ["serve", proteins, "--port", str(taken), "--workers", "1"]
            )
        assert rc == 4
        assert "cannot bind" in capsys.readouterr().err

    def test_serve_main_shares_the_contract(self, capsys):
        from repro.cli import serve_main

        rc = serve_main(["/nonexistent/bank.fasta"])
        assert rc == 3
        assert "cannot load" in capsys.readouterr().err


class TestRenderFlag:
    def test_compare_render(self, workload_files, capsys):
        proteins, genome = workload_files
        assert main(["compare", proteins, genome, "--max-hits", "1", "--render", "1"]) == 0
        out = capsys.readouterr().out
        assert "Query  " in out and "Sbjct  " in out
        assert "Identities =" in out
