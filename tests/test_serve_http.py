"""HTTP-layer tests: endpoints, error paths, shed headers, load client.

Boots a real :class:`SearchHTTPServer` on an ephemeral port with a tiny
resident bank (1 worker keeps spawn cost down — bit-identity under the
warm pool is covered by ``test_serve_service.py``).
"""

import json
import threading
from http.client import HTTPConnection

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.faults import FaultKind, FaultPlan, FaultSpec
from repro.seqs.sequence import BankBuilder
from repro.serve import SearchService, ServiceConfig
from repro.serve.client import run_load, search_request
from repro.serve.server import SearchHTTPServer

AA = "ACDEFGHIKLMNPQRSTVWY"


def _rand_seq(rng, n):
    return "".join(AA[i] for i in rng.integers(0, 20, n))


@pytest.fixture(scope="module")
def http_workload():
    rng = np.random.default_rng(23)
    motif = _rand_seq(rng, 50)
    rb = BankBuilder()
    for i in range(4):
        rb.add(f"res{i}", _rand_seq(rng, 30) + motif + _rand_seq(rng, 30))
    qb = BankBuilder()
    qb.add("qry0", _rand_seq(rng, 10) + motif + _rand_seq(rng, 10))
    return qb.build(), rb.build()


@pytest.fixture()
def live_server(http_workload):
    """Booted server on an ephemeral port; yields (host, port, service, queries)."""
    queries, resident = http_workload
    svc = SearchService(
        PipelineConfig(workers=1), resident, ServiceConfig(workers=1)
    )
    svc.start(warm=True)
    server = SearchHTTPServer(("127.0.0.1", 0), svc)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    try:
        yield host, port, svc, queries
    finally:
        server.drain_and_shutdown(timeout=30)
        server.server_close()
        thread.join(timeout=10)


def _get(host, port, path):
    conn = HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _post(host, port, body, path="/search", headers=None):
    conn = HTTPConnection(host, port, timeout=10)
    try:
        payload = body if isinstance(body, bytes) else json.dumps(body).encode()
        conn.request(
            "POST", path, body=payload,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


def _query_payload(queries):
    return {
        "queries": [
            [queries.names[i], queries[i].text()] for i in range(len(queries))
        ]
    }


class TestEndpoints:
    def test_search_round_trip(self, live_server):
        host, port, _svc, queries = live_server
        status, body, _ = _post(host, port, _query_payload(queries))
        assert status == 200
        out = json.loads(body)
        assert out["status"] == "ok"
        assert out["n_alignments"] > 0
        assert {"query", "subject", "query_range", "subject_range"} <= set(
            out["alignments"][0]
        )

    def test_healthz_reports_snapshot(self, live_server):
        host, port, _svc, _q = live_server
        status, body = _get(host, port, "/healthz")
        assert status == 200
        snap = json.loads(body)
        assert snap["ok"] and snap["breaker"] == "closed"

    def test_readyz_flips_on_drain(self, live_server):
        host, port, svc, _q = live_server
        status, body = _get(host, port, "/readyz")
        assert status == 200 and json.loads(body)["ready"]
        svc.drain(timeout=30)
        status, body = _get(host, port, "/readyz")
        assert status == 503
        out = json.loads(body)
        assert not out["ready"] and out["draining"]

    def test_metrics_is_prometheus_text(self, live_server):
        host, port, _svc, _q = live_server
        status, body = _get(host, port, "/metrics")
        assert status == 200
        assert b"# TYPE serve_breaker_state gauge" in body

    def test_unknown_paths_404(self, live_server):
        host, port, _svc, queries = live_server
        assert _get(host, port, "/nope")[0] == 404
        assert _post(host, port, _query_payload(queries), path="/nope")[0] == 404


class TestBadRequests:
    def test_empty_body_413(self, live_server):
        host, port, _svc, _q = live_server
        status, _, _ = _post(host, port, b"")
        assert status == 413

    def test_garbage_json_400(self, live_server):
        host, port, _svc, _q = live_server
        status, body, _ = _post(host, port, b"{not json")
        assert status == 400
        assert b"bad search request" in body

    def test_missing_queries_400(self, live_server):
        host, port, _svc, _q = live_server
        assert _post(host, port, {"deadline_ms": 10})[0] == 400
        assert _post(host, port, {"queries": []})[0] == 400

    def test_expired_deadline_504(self, live_server):
        host, port, _svc, queries = live_server
        payload = {**_query_payload(queries), "deadline_ms": 0}
        status, body, _ = _post(host, port, payload)
        assert status == 504
        assert json.loads(body)["status"] == "deadline"

    def test_bad_max_alignments_400_not_500(self, live_server):
        # A malformed limit is the client's error: it must answer 400
        # before submit(), never become a dispatcher 500 that counts
        # against the breaker.
        host, port, svc, queries = live_server
        for bad in ("five", -1, 2.5, True):
            payload = {**_query_payload(queries), "max_alignments": bad}
            status, body, _ = _post(host, port, payload)
            assert status == 400, f"max_alignments={bad!r}"
            assert b"bad search request" in body
        assert svc.breaker.trips == 0
        # a legal limit still flows through
        payload = {**_query_payload(queries), "max_alignments": 0}
        status, body, _ = _post(host, port, payload)
        assert status == 200
        assert json.loads(body)["alignments"] == []


class TestShedding:
    def test_shed_carries_retry_after_header(self, http_workload):
        queries, resident = http_workload
        plan = FaultPlan(
            seed=7, specs=(FaultSpec(kind=FaultKind.QUEUE_OVERFLOW, request=0),)
        )
        svc = SearchService(
            PipelineConfig(workers=1),
            resident,
            ServiceConfig(workers=1, retry_after_seconds=2.5),
            fault_plan=plan,
        )
        svc.start(warm=False)
        server = SearchHTTPServer(("127.0.0.1", 0), svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[0], server.server_address[1]
            status, body, headers = _post(host, port, _query_payload(queries))
            assert status == 429
            assert json.loads(body)["status"] == "shed"
            assert headers.get("Retry-After") == "2.5"
            # next request goes through
            status, _, _ = _post(host, port, _query_payload(queries))
            assert status == 200
        finally:
            server.drain_and_shutdown(timeout=30)
            server.server_close()
            thread.join(timeout=10)


class TestClient:
    def test_search_request_helper(self, live_server):
        host, port, _svc, queries = live_server
        pairs = [(queries.names[0], queries[0].text())]
        out = search_request(host, port, pairs)
        assert out["http_status"] == 200
        assert out["status"] == "ok"
        assert out["wall_seconds"] >= 0
        assert out["n_alignments"] > 0

    def test_search_request_connection_refused_is_status_zero(self):
        out = search_request("127.0.0.1", 1, [("q", "ACDEF")], timeout=0.5)
        assert out["http_status"] == 0
        assert "error" in out

    def test_run_load_summary(self, live_server):
        host, port, _svc, queries = live_server
        pairs = [(queries.names[0], queries[0].text())]
        summary = run_load(host, port, [pairs] * 4, concurrency=2)
        assert summary["requests"] == 4
        assert summary["served"] == 4
        assert summary["shed"] == 0 and summary["errors"] == 0
        assert summary["qps"] > 0
        assert summary["time_to_first_hit_seconds"] is not None
        assert summary["shed_rate"] == 0.0

    def test_run_load_applies_slow_client_fault(self, live_server):
        host, port, _svc, queries = live_server
        pairs = [(queries.names[0], queries[0].text())]
        plan = FaultPlan(
            seed=3,
            specs=(
                FaultSpec(
                    kind=FaultKind.SLOW_CLIENT, request=0, hang_seconds=0.3
                ),
            ),
        )
        summary = run_load(
            host, port, [pairs] * 2, concurrency=1, fault_plan=plan
        )
        # the stalled request still completes (stall < socket timeout)
        assert summary["served"] == 2
        assert summary["wall_seconds"] >= 0.3
