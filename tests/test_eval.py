"""Evaluation metric tests: ROC50, AP, benchmark, throughput."""

import numpy as np
import pytest

from repro.eval.ap import average_precision, mean_ap
from repro.eval.benchmark_data import build_benchmark, frame_interval
from repro.eval.metrics import LITERATURE_THROUGHPUT, kaamnt_per_second
from repro.eval.roc import mean_roc50, roc50, roc_n


class TestRocN:
    def test_perfect_ranking(self):
        # All P positives before any FP: every FP has P TPs above it.
        labels = [True] * 4 + [False] * 60
        assert roc50(labels, 4) == pytest.approx(1.0)

    def test_worst_ranking(self):
        labels = [False] * 60 + [True] * 4
        assert roc50(labels, 4) == 0.0

    def test_interleaved(self):
        # TP FP TP FP: counts above first 2 FPs are 1 and 2; remaining 48
        # virtual FPs see 2 TPs each -> (1+2+48*2)/(50*2).
        labels = [True, False, True, False]
        assert roc_n(labels, 2, n=50) == pytest.approx((1 + 2 + 96) / 100)

    def test_short_list_credits_found_tps(self):
        labels = [True]
        assert roc50(labels, 1) == pytest.approx(1.0)

    def test_empty_list_scores_zero(self):
        assert roc50([], 3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            roc50([True], 0)
        with pytest.raises(ValueError):
            roc_n([True], 1, n=0)

    def test_mean_roc50(self):
        m = mean_roc50([[True], [False] * 60], [1, 1])
        assert m == pytest.approx(0.5)

    def test_mean_roc50_mismatch(self):
        with pytest.raises(ValueError):
            mean_roc50([[True]], [1, 2])


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision([True, True, False]) == pytest.approx(1.0)

    def test_alternating(self):
        # TPs at positions 1 and 3: (1/1 + 2/3)/2.
        assert average_precision([True, False, True]) == pytest.approx(
            (1 + 2 / 3) / 2
        )

    def test_no_tp(self):
        assert average_precision([False] * 10) == 0.0

    def test_window_truncation(self):
        labels = [False] * 50 + [True]
        assert average_precision(labels, top=50) == 0.0
        assert average_precision(labels, top=51) > 0.0

    def test_mean_ap(self):
        assert mean_ap([[True], [False]]) == pytest.approx(0.5)

    def test_empty(self):
        assert mean_ap([]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            average_precision([True], top=0)


class TestFrameInterval:
    def test_forward_frames(self):
        assert frame_interval("g|frame+1", 0, 10, 300) == (0, 30)
        assert frame_interval("g|frame+2", 0, 10, 300) == (1, 31)
        assert frame_interval("g|frame+3", 5, 10, 300) == (17, 32)

    def test_reverse_frames(self):
        start, end = frame_interval("g|frame-1", 0, 10, 300)
        assert (start, end) == (270, 300)
        start2, end2 = frame_interval("g|frame-2", 0, 10, 300)
        assert (start2, end2) == (269, 299)

    def test_intervals_well_formed(self):
        for f in ("+1", "+2", "+3", "-1", "-2", "-3"):
            s, e = frame_interval(f"g|frame{f}", 3, 17, 600)
            assert 0 <= s < e <= 600
            assert e - s == 42  # 14 codons


class TestBenchmark:
    @pytest.fixture(scope="class")
    def bench(self):
        return build_benchmark(
            seed=5,
            n_families=3,
            queries_per_family=2,
            plants_per_family=2,
            genome_length=90_000,
            query_identity=(0.7, 0.9),
            plant_identity=(0.7, 0.9),
        )

    def test_shapes(self, bench):
        assert len(bench.queries) == 6
        assert len(bench.truth) == 6
        assert len(bench.query_families) == 6

    def test_positives_per_family(self, bench):
        for fam in range(3):
            assert bench.positives_for(fam) == 2

    def test_engine_scoring_end_to_end(self, bench):
        from repro.core.pipeline import SeedComparisonPipeline

        run = bench.score_engine(
            "psc", lambda q, g: SeedComparisonPipeline().compare_with_genome(q, g)
        )
        assert run.name == "psc"
        assert 0.5 < run.roc50 <= 1.0  # easy identities -> high recall
        assert 0.5 < run.ap_mean <= 1.0
        assert len(run.per_query_labels) == 6

    def test_label_alignment_truth(self, bench):
        """An alignment covering a planted locus of the right family is a
        TP; one elsewhere is an FP."""
        from repro.core.results import Alignment

        t = next(t for t in bench.truth if t.family_id == bench.query_families[0])
        aa_start = (t.genome_start + 2) // 3
        aa_end = min(aa_start + 10, t.genome_end // 3)
        frame = "+1" if t.strand == 1 else "-1"
        a = Alignment(0, "q", 0, 10, 0, f"yeastlike|frame{frame}", aa_start, aa_end,
                      100, 40.0, 1e-9)
        # Footprint maths covers the plant regardless of exact frame offset.
        hit = bench.label_alignment(0, a)
        far = Alignment(0, "q", 0, 10, 0, "yeastlike|frame+1",
                        (t.genome_end + 50_000) // 3 % 20_000, (t.genome_end + 50_030) // 3 % 20_000 + 10,
                        100, 40.0, 1e-9)
        assert isinstance(hit, bool)
        assert bench.label_alignment(0, far) in (True, False)


class TestThroughput:
    def test_kaamnt_formula(self):
        # 10 Kaa × 100 Mnt / 2 s = 500.
        assert kaamnt_per_second(10_000, 100_000_000, 2.0) == pytest.approx(500.0)

    def test_zero_seconds_rejected(self):
        with pytest.raises(ValueError):
            kaamnt_per_second(1, 1, 0.0)

    def test_literature_table_matches_paper(self):
        values = {p.name: p.kaamnt_per_s for p in LITERATURE_THROUGHPUT}
        assert values["DeCypher"] == 182.0
        assert values["CLC"] == 2.0
        assert values["FLASH/FPGA"] == 451.0
        assert values["Systolic"] == 863.0
        assert values["1/2 RASC-100"] == 620.0
