"""Tracing tests: span lifecycle, ambient activation, cross-process adoption."""

import threading

import pytest

from repro.obs import trace
from repro.obs.trace import Span, Timer, Tracer
from repro.util.timing import Stopwatch


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Every test starts and ends with tracing off."""
    trace.reset()
    yield
    trace.reset()


class TestSpan:
    def test_end_is_idempotent_first_close_wins(self):
        s = Span("x", span_id=1, parent_id=None, start=10.0)
        assert s.duration is None
        s.end(at=11.5)
        assert s.duration == pytest.approx(1.5)
        s.end(at=99.0)
        assert s.duration == pytest.approx(1.5)

    def test_add_event_records_offset_from_start(self):
        s = Span("x", span_id=1, parent_id=None, start=trace.clock())
        s.add_event("first", reason="crash")
        s.add_event("second")
        assert [e["name"] for e in s.events] == ["first", "second"]
        assert s.events[0]["reason"] == "crash"
        assert 0.0 <= s.events[0]["offset"] <= s.events[1]["offset"]

    def test_dict_roundtrip(self):
        s = Span("step2.shard", span_id=7, parent_id=3, start=1.25, duration=0.5)
        s.set_attrs(shard=2, via="pool")
        s.add_event("retry", attempt=1)
        assert Span.from_dict(s.to_dict()) == s

    def test_open_span_roundtrips_as_open(self):
        s = Span("open", span_id=1, parent_id=None, start=0.0)
        assert Span.from_dict(s.to_dict()).duration is None


class TestTracer:
    def test_nesting_parent_before_child_order(self):
        tracer = Tracer()
        with trace.activate(tracer):
            with trace.span("a") as a:
                with trace.span("b", k=1) as b:
                    assert b.parent_id == a.span_id
                    assert trace.current_span_id() == b.span_id
                with trace.span("c") as c:
                    assert c.parent_id == a.span_id
            assert a.parent_id is None
        assert [s.name for s in tracer.spans] == ["a", "b", "c"]
        assert all(s.duration is not None for s in tracer.spans)
        ids = [s.span_id for s in tracer.spans]
        assert ids == sorted(ids)  # creation order = parent before child

    def test_record_backdates_to_end_now(self):
        tracer = Tracer()
        before = trace.clock()
        s = tracer.record("shard", 2.0, shard=1)
        after = trace.clock()
        assert s.duration == pytest.approx(2.0)
        assert before - 2.0 <= s.start <= after - 2.0
        assert s.attributes == {"shard": 1}

    def test_record_with_explicit_start(self):
        s = Tracer().record("x", 1.0, start=5.0)
        assert s.start == 5.0 and s.duration == 1.0

    def test_adopt_remaps_ids_reparents_and_rebases(self):
        worker = Tracer()
        w_root = worker.start_span("step2.worker")
        w_child = worker.start_span("batch", parent_id=w_root.span_id)
        w_child.end()
        w_root.end()

        parent = Tracer()
        shard = parent.start_span("step2.shard")
        adopted = parent.adopt(
            worker.export(), shard.span_id, rebase=(w_root.start, 100.0)
        )
        a_root, a_child = adopted
        # Foreign root hangs under the shard span; the internal link holds.
        assert a_root.parent_id == shard.span_id
        assert a_child.parent_id == a_root.span_id
        # Ids are remapped into the parent tracer's space and stay unique.
        assert len({shard.span_id, a_root.span_id, a_child.span_id}) == 3
        # Timeline rebased: worker start lands at local time 100.
        assert a_root.start == pytest.approx(100.0)
        assert a_child.start == pytest.approx(
            100.0 + (w_child.start - w_root.start)
        )
        assert a_child.duration == pytest.approx(w_child.duration)

    def test_adopt_resolves_stale_parent_to_new_root(self):
        # A fork-inherited context var can leave a worker root whose parent
        # id equals its own id; adoption must reparent it, never self-link.
        foreign = [{"name": "step2.worker", "span_id": 1, "parent_id": 1,
                    "start": 0.0, "duration": 0.1, "attributes": {},
                    "events": []}]
        parent = Tracer()
        top = parent.start_span("step2.shard")
        (adopted,) = parent.adopt(foreign, top.span_id)
        assert adopted.parent_id == top.span_id
        assert adopted.span_id != top.span_id

    def test_adopt_without_rebase_keeps_starts(self):
        worker = Tracer()
        worker.record("w", 1.0, start=3.0)
        parent = Tracer()
        (adopted,) = parent.adopt(worker.export(), None)
        assert adopted.start == 3.0 and adopted.parent_id is None

    def test_export_is_json_able(self):
        tracer = Tracer(meta={"command": "test"})
        tracer.record("x", 0.25)
        (row,) = tracer.export()
        assert row["name"] == "x" and isinstance(row["attributes"], dict)
        assert tracer.meta == {"command": "test"}


class TestAmbient:
    def test_span_is_noop_when_inactive(self):
        assert trace.active() is None
        with trace.span("x") as sp:
            assert sp is None
            assert trace.current_span_id() is None

    def test_activate_none_deactivates_for_the_extent(self):
        tracer = Tracer()
        with trace.activate(tracer):
            with trace.activate(None):
                with trace.span("hidden") as sp:
                    assert sp is None
            with trace.span("seen"):
                pass
        assert [s.name for s in tracer.spans] == ["seen"]

    def test_reset_drops_ambient_and_current_span(self):
        with trace.activate(Tracer()):
            with trace.span("x"):
                trace.reset()
                assert trace.active() is None
                assert trace.current_span_id() is None

    def test_add_event_attaches_to_innermost_open_span(self):
        tracer = Tracer()
        with trace.activate(tracer):
            trace.add_event("orphan")  # no open span: dropped, no error
            with trace.span("outer") as outer:
                with trace.span("inner") as inner:
                    trace.add_event("step2.retry", shard=1)
        assert outer.events == []
        assert inner.events[0]["name"] == "step2.retry"
        assert inner.events[0]["shard"] == 1

    def test_traced_decorator(self):
        calls = []

        @trace.traced(engine="batched")
        def score(n):
            calls.append(n)
            return n * 2

        assert score(3) == 6  # inactive: plain call, nothing recorded
        tracer = Tracer()
        with trace.activate(tracer):
            assert score(4) == 8
        assert calls == [3, 4]
        (only,) = tracer.spans
        assert only.name.endswith("score")
        assert only.attributes == {"engine": "batched"}

    def test_threads_see_their_own_ancestry(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)
        links = {}

        def work(k):
            with trace.span("root", thread=k) as root:
                barrier.wait()  # both roots open before either child
                with trace.span("child", thread=k) as child:
                    links[k] = (root.span_id, child.parent_id)

        with trace.activate(tracer):
            threads = [threading.Thread(target=work, args=(k,)) for k in (0, 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for root_id, parent_of_child in links.values():
            assert parent_of_child == root_id


class TestTimer:
    def test_accumulates_and_resets(self):
        t = Timer()
        with t:
            pass
        first = t.seconds
        with t:
            pass
        assert t.seconds >= first >= 0.0
        t.reset()
        assert t.seconds == 0.0

    def test_stopwatch_is_a_timer_shim(self):
        sw = Stopwatch()
        assert isinstance(sw, Timer)
        with sw as entered:
            assert entered is sw
        assert sw.seconds >= 0.0
