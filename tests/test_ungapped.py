"""Ungapped extension (step 2) kernel tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contracts import ContractError
from repro.extend.ungapped import (
    ScoreSemantics,
    UngappedConfig,
    UngappedExtender,
    UngappedHits,
    UngappedStats,
    ungapped_score_reference,
    ungapped_scores,
    ungapped_xdrop,
)
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.seqs.alphabet import AMINO, encode_protein
from repro.seqs.matrices import BLOSUM62
from repro.seqs.sequence import Sequence, SequenceBank


class TestReference:
    def test_identical_windows(self):
        w = encode_protein("MKVLAW")
        # Sum of BLOSUM62 diagonal: M5 K5 V4 L4 A4 W11 = 33.
        assert ungapped_score_reference(w, w) == 33

    def test_score_never_negative(self):
        a = encode_protein("WWWW")
        b = encode_protein("AAAA")
        assert ungapped_score_reference(a, b) == 0

    def test_kadane_recovers_after_mismatch(self):
        # Good prefix, ruinous middle (6 × W:D = -24 < -22), good suffix:
        # the running score resets to zero and the suffix run wins alone.
        a = encode_protein("WWDDDDDDWW")
        b = encode_protein("WWWWWWWWWW")
        score = ungapped_score_reference(a, b)
        assert score == 22  # two W matches after reset

    def test_paper_literal_sums_positive_costs(self):
        a = encode_protein("WAWA")
        b = encode_protein("WWWW")
        # W:W=11 (twice), A:W=-3 ignored under paper-literal semantics.
        assert (
            ungapped_score_reference(a, b, semantics=ScoreSemantics.PAPER_LITERAL)
            == 22
        )

    def test_paper_literal_ge_kadane(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = rng.integers(0, 20, 12).astype(np.uint8)
            b = rng.integers(0, 20, 12).astype(np.uint8)
            k = ungapped_score_reference(a, b, semantics=ScoreSemantics.KADANE)
            p = ungapped_score_reference(a, b, semantics=ScoreSemantics.PAPER_LITERAL)
            assert p >= k

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            ungapped_score_reference(encode_protein("MK"), encode_protein("MKV"))


class TestVectorisedKernel:
    @pytest.mark.parametrize("semantics", list(ScoreSemantics))
    def test_matches_reference(self, semantics, rng):
        w0 = rng.integers(0, 25, size=(6, 20)).astype(np.uint8)
        w1 = rng.integers(0, 25, size=(8, 20)).astype(np.uint8)
        s = ungapped_scores(w0, w1, semantics=semantics)
        for i in range(6):
            for j in range(8):
                assert s[i, j] == ungapped_score_reference(
                    w0[i], w1[j], semantics=semantics
                )

    def test_shape_and_dtype(self, rng):
        w0 = rng.integers(0, 20, size=(3, 10)).astype(np.uint8)
        w1 = rng.integers(0, 20, size=(5, 10)).astype(np.uint8)
        s = ungapped_scores(w0, w1)
        assert s.shape == (3, 5)
        assert s.dtype == np.int32

    def test_width_mismatch_rejected(self, rng):
        # With REPRO_CONTRACTS=1 the annotation contract rejects the width
        # mismatch before the kernel's own check does.
        with pytest.raises((ValueError, ContractError), match="width"):
            ungapped_scores(
                rng.integers(0, 20, (2, 8)).astype(np.uint8),
                rng.integers(0, 20, (2, 9)).astype(np.uint8),
            )

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(1, 30),
        st.sampled_from(list(ScoreSemantics)),
    )
    @settings(max_examples=40, deadline=None)
    def test_kernel_equals_reference_property(self, seed, k0, k1, width, semantics):
        rng = np.random.default_rng(seed)
        w0 = rng.integers(0, 25, size=(k0, width)).astype(np.uint8)
        w1 = rng.integers(0, 25, size=(k1, width)).astype(np.uint8)
        s = ungapped_scores(w0, w1, semantics=semantics)
        i = int(rng.integers(k0))
        j = int(rng.integers(k1))
        assert s[i, j] == ungapped_score_reference(w0[i], w1[j], semantics=semantics)


class TestExtender:
    def make_index(self):
        b0 = SequenceBank([Sequence.from_text("q", "MKVLAWTRQMKVLAW")], pad=16)
        b1 = SequenceBank(
            [Sequence.from_text("s", "AAMKVLAWTRQAA"), Sequence.from_text("t", "MKVLAW")],
            pad=16,
        )
        return b0, b1, TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))

    def test_hits_above_threshold_only(self):
        b0, b1, idx = self.make_index()
        ext = UngappedExtender(UngappedConfig(w=4, n=4, threshold=20))
        hits = ext.run(idx)
        assert len(hits) > 0
        assert (hits.scores >= 20).all()

    def test_stats_accounting(self):
        b0, b1, idx = self.make_index()
        cfg = UngappedConfig(w=4, n=4, threshold=20)
        hits = UngappedExtender(cfg).run(idx)
        assert hits.stats.pairs == idx.total_pairs
        assert hits.stats.cells == idx.total_pairs * cfg.window
        assert hits.stats.hits == len(hits)
        assert hits.stats.entries == idx.n_shared_keys

    def test_threshold_monotonicity(self):
        b0, b1, idx = self.make_index()
        lo = UngappedExtender(UngappedConfig(w=4, n=4, threshold=10)).run(idx)
        hi = UngappedExtender(UngappedConfig(w=4, n=4, threshold=40)).run(idx)
        assert len(hi) <= len(lo)

    def test_chunking_invariance(self):
        b0, b1, idx = self.make_index()
        big = UngappedExtender(UngappedConfig(w=4, n=4, threshold=15)).run(idx)
        tiny = UngappedExtender(
            UngappedConfig(w=4, n=4, threshold=15, pair_chunk=2)
        ).run(idx)
        assert np.array_equal(big.offsets0, tiny.offsets0)
        assert np.array_equal(big.offsets1, tiny.offsets1)
        assert np.array_equal(big.scores, tiny.scores)

    def test_windows_cannot_cross_boundaries(self):
        # A hit's window overlapping padding scores GAP_SCORE there, so a
        # perfect seed at a sequence edge still scores only its in-sequence
        # part.
        b0 = SequenceBank([Sequence.from_text("q", "MKVL")], pad=16)
        b1 = SequenceBank([Sequence.from_text("s", "MKVL")], pad=16)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        hits = UngappedExtender(UngappedConfig(w=4, n=8, threshold=1)).run(idx)
        assert len(hits) == 1
        expected = ungapped_score_reference(
            encode_protein("MKVL"), encode_protein("MKVL")
        )
        assert hits.scores[0] == expected

    def test_concatenate_empty(self):
        merged = UngappedHits.concatenate([])
        assert len(merged) == 0
        assert merged.stats.pairs == 0


class TestUngappedXdrop:
    def test_extends_over_perfect_match(self):
        buf = encode_protein("--------MKVLAWTRQ--------")
        score, left, right = ungapped_xdrop(buf, 11, buf, 11, 3, x_drop=20)
        # Anchor KVL extends to the full MKVLAWTRQ identity run.
        assert left == 3 and right == 3
        full = ungapped_score_reference(
            encode_protein("MKVLAWTRQ"), encode_protein("MKVLAWTRQ")
        )
        assert score == full

    def test_xdrop_stops_in_noise(self):
        a = encode_protein("PPPPPPPPWWWWPPPPPPPP")
        b = encode_protein("GGGGGGGGWWWWGGGGGGGG")
        score, left, right = ungapped_xdrop(a, 8, b, 8, 4, x_drop=5)
        assert score == 44  # 4 × W:W
        assert left <= 3 and right <= 3

    def test_gap_sentinel_blocks_extension(self):
        a = encode_protein("WWWW----WWWW")
        score, left, right = ungapped_xdrop(a, 0, a, 0, 4, x_drop=10)
        assert right <= 4  # cannot profitably cross the sentinel run
