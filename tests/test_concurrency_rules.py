"""RC1xx project-rule tests: committed fixtures, real tree, seeded bugs."""

import pathlib

import pytest

from repro.analysis.checker import check_paths

FIXTURES = pathlib.Path(__file__).resolve().parent / "analysis_fixtures"
REPO = pathlib.Path(__file__).resolve().parents[1]

RC1XX = ["RC100", "RC101", "RC102", "RC103", "RC104", "RC105", "RC107", "RC110"]


def codes_for(tree):
    result = check_paths([FIXTURES / tree], select=RC1XX)
    assert not result.parse_errors
    return sorted({v.rule for v in result.violations})


class TestFixtures:
    """Each rule has a tree it must flag and a twin it must pass."""

    @pytest.mark.parametrize("code", RC1XX)
    def test_flag_tree_fires(self, code):
        assert codes_for(f"{code.lower()}_flags") == [code]

    @pytest.mark.parametrize("code", RC1XX)
    def test_clean_tree_passes(self, code):
        assert codes_for(f"{code.lower()}_clean") == []

    def test_rc100_catches_the_cross_module_variant(self):
        result = check_paths([FIXTURES / "rc100_flags"], select=["RC100"])
        flagged = {v.message.split("(")[0].strip() for v in result.violations}
        assert any("merge_remote" in m for m in flagged)
        assert any("merge_results" in m for m in flagged)


class TestRealTree:
    def test_src_is_clean_under_rc1xx_modulo_baseline(self):
        # The acceptance gate: the RC1xx family over the real source tree
        # must be clean except for the committed baseline (the executor's
        # intentional per-worker `_WORKER` state and the `_LIVE_SEGMENTS`
        # cleanup registry, both cleared in every worker initializer).
        from repro.analysis.baseline import load_baseline

        baseline = load_baseline(REPO / "repro-baseline.json")
        result = check_paths(
            [REPO / "src"], select=RC1XX, baseline=baseline
        )
        assert result.violations == []
        assert result.baseline_suppressed == 2
        # The baseline also carries RC3xx entries that only match when the
        # thread/lock family runs; staleness here is judged for RC1xx only
        # (the full-family run is asserted in test_thread_rules.py).
        assert [k for k in result.baseline_stale if k[0] in RC1XX] == []


class TestSeededBug:
    """An ordering bug planted in merge code must be caught statically."""

    def test_set_iteration_merge_is_flagged(self, tmp_path):
        bugged = tmp_path / "repro" / "core" / "executor.py"
        bugged.parent.mkdir(parents=True)
        bugged.write_text(
            "def merge(shard_results: dict) -> list:\n"
            "    out = []\n"
            "    for shard in set(shard_results):\n"
            "        out.append(shard_results[shard])\n"
            "    return out\n"
        )
        result = check_paths([tmp_path], select=["RC100"])
        assert [v.rule for v in result.violations] == ["RC100"]
        assert "merge()" in result.violations[0].message

    def test_listdir_order_in_results_is_flagged(self, tmp_path):
        bugged = tmp_path / "repro" / "core" / "results.py"
        bugged.parent.mkdir(parents=True)
        bugged.write_text(
            "import os\n\n\n"
            "def load_reports(d: str) -> list:\n"
            "    out = []\n"
            "    for name in os.listdir(d):\n"
            "        out.append(name)\n"
            "    return out\n"
        )
        result = check_paths([tmp_path], select=["RC100"])
        assert [v.rule for v in result.violations] == ["RC100"]

    def test_sorted_merge_is_not_flagged(self, tmp_path):
        fixed = tmp_path / "repro" / "core" / "executor.py"
        fixed.parent.mkdir(parents=True)
        fixed.write_text(
            "def merge(shard_results: dict) -> list:\n"
            "    out = []\n"
            "    for shard in sorted(shard_results):\n"
            "        out.append(shard_results[shard])\n"
            "    return out\n"
        )
        result = check_paths([tmp_path], select=["RC100"])
        assert result.violations == []
