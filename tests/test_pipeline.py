"""End-to-end software pipeline tests (the paper's algorithm)."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import SeedComparisonPipeline, gapped_stage
from repro.extend.ungapped import ScoreSemantics
from repro.index.kmer import ContiguousSeedModel
from repro.seqs.generate import make_family, plant_homologs, random_genome
from repro.seqs.sequence import Sequence, SequenceBank


class TestConfig:
    def test_window_formula(self):
        cfg = PipelineConfig(flank=12)
        assert cfg.window == cfg.seed_model.span + 24

    def test_exact_seed_constructor(self):
        cfg = PipelineConfig.exact_seed(5)
        assert isinstance(cfg.seed_model, ContiguousSeedModel)
        assert cfg.seed_model.span == 5

    def test_with_replaces_fields(self):
        cfg = PipelineConfig()
        cfg2 = cfg.with_(ungapped_threshold=40)
        assert cfg2.ungapped_threshold == 40
        assert cfg.ungapped_threshold != 40

    def test_ungapped_config_derivation(self):
        cfg = PipelineConfig(flank=10, ungapped_threshold=33)
        ucfg = cfg.ungapped_config()
        assert ucfg.n == 10
        assert ucfg.threshold == 33
        assert ucfg.window == cfg.window


class TestPipelineFindsPlants:
    def test_all_planted_members_found(self, planted_workload):
        queries, genome, truth = planted_workload
        report = SeedComparisonPipeline().compare_with_genome(queries, genome)
        # Every planted member should yield one reported alignment for its
        # family's query at these identities.
        assert len(report) >= len(truth)
        found_families = {a.seq0_name for a in report}
        assert found_families == {f"fam{i}" for i in range(3)}

    def test_evalues_below_cutoff(self, planted_workload):
        queries, genome, _ = planted_workload
        cfg = PipelineConfig(max_evalue=1e-6)
        report = SeedComparisonPipeline(cfg).compare_with_genome(queries, genome)
        assert all(a.evalue <= 1e-6 for a in report)

    def test_report_sorted_by_evalue(self, planted_workload):
        queries, genome, _ = planted_workload
        report = SeedComparisonPipeline().compare_with_genome(queries, genome)
        evs = [a.evalue for a in report]
        assert evs == sorted(evs)

    def test_no_hits_in_pure_noise(self, rng):
        # Unrelated banks at strict E-value yield nothing.
        from repro.seqs.generate import random_protein_bank

        b0 = random_protein_bank(rng, 4, mean_length=100)
        genome = random_genome(rng, 20_000)
        report = SeedComparisonPipeline(
            PipelineConfig(max_evalue=1e-9)
        ).compare_with_genome(b0, genome)
        assert len(report) == 0


class TestProfileAccounting:
    def test_counts_populated(self, planted_workload):
        queries, genome, _ = planted_workload
        pipe = SeedComparisonPipeline()
        report = pipe.compare_with_genome(queries, genome)
        p = pipe.profile
        assert p.step1.operations > 0  # residues indexed
        assert p.step2.operations == report.n_seed_pairs * pipe.config.window
        assert p.step3.items == report.n_gapped_extensions
        assert p.step3.operations > 0  # DP cells
        assert p.total_wall > 0

    def test_wall_fractions_sum_to_one(self, planted_workload):
        queries, genome, _ = planted_workload
        pipe = SeedComparisonPipeline()
        pipe.compare_with_genome(queries, genome)
        assert abs(sum(pipe.profile.wall_fractions()) - 1.0) < 1e-9


class TestDeduplication:
    def test_one_alignment_per_planted_copy(self, rng):
        """Many seeds within one homology must collapse to one alignment."""
        fam = make_family(rng, 0, 200, 1, identity_range=(0.95, 0.95))
        genome = random_genome(rng, 30_000)
        genome, truth = plant_homologs(rng, genome, [fam])
        queries = SequenceBank([Sequence("q", fam.ancestor)])
        report = SeedComparisonPipeline().compare_with_genome(queries, genome)
        # The single planted copy yields exactly one (not dozens of) HSP.
        strong = [a for a in report if a.evalue < 1e-20]
        assert len(strong) == 1
        # But step 2 produced many seed hits for it.
        assert report.n_ungapped_hits > 10


class TestSemanticsConsistency:
    def test_paper_literal_produces_superset_of_hits(self, planted_workload):
        queries, genome, _ = planted_workload
        kadane = SeedComparisonPipeline(
            PipelineConfig(semantics=ScoreSemantics.KADANE)
        )
        literal = SeedComparisonPipeline(
            PipelineConfig(semantics=ScoreSemantics.PAPER_LITERAL)
        )
        kadane.compare_with_genome(queries, genome)
        literal.compare_with_genome(queries, genome)
        # paper-literal window scores dominate Kadane scores.
        assert len(literal.last_hits) >= len(kadane.last_hits)


class TestStep2Swap:
    def test_custom_step2_engine_used(self, planted_workload):
        queries, genome, _ = planted_workload
        calls = []

        def fake_step2(index):
            from repro.extend.ungapped import UngappedExtender

            calls.append(index.total_pairs)
            return UngappedExtender(PipelineConfig().ungapped_config()).run(index)

        pipe = SeedComparisonPipeline(step2=fake_step2)
        report = pipe.compare_with_genome(queries, genome)
        assert calls, "custom step-2 engine was not invoked"
        assert len(report) > 0


class TestBankVsBank:
    def test_protein_vs_protein_mode(self, small_banks):
        b0, b1 = small_banks
        cfg = PipelineConfig(ungapped_threshold=18, max_evalue=10.0)
        report = SeedComparisonPipeline(cfg).compare_banks(b0, b1)
        assert report.n_seed_pairs > 0
