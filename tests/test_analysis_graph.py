"""Cross-module analysis substrate tests: graph, taint flows, releases."""

from repro.analysis.checker import collect_files, parse_file
from repro.analysis.flows import ProjectAnalyses
from repro.analysis.graph import ProjectGraph, dotted_name, module_name_of


def build_graph(tmp_path, files):
    """Write {rel: source} under tmp_path and build the project graph."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    contexts = [parse_file(p) for p in collect_files([tmp_path])]
    return ProjectGraph.from_contexts(contexts)


class TestNaming:
    def test_module_name_of(self):
        assert module_name_of("core/executor.py") == "repro.core.executor"
        assert module_name_of("core/__init__.py") == "repro.core"
        assert module_name_of("__init__.py") == "repro"

    def test_dotted_name(self):
        import ast

        expr = ast.parse("a.b.c(x)").body[0].value
        assert dotted_name(expr.func) == "a.b.c"
        subscript = ast.parse("a[0](x)").body[0].value
        assert dotted_name(subscript.func) is None


class TestCallResolution:
    def test_same_module_call(self, tmp_path):
        g = build_graph(
            tmp_path,
            {
                "repro/core/a.py": (
                    "def helper() -> int:\n    return 1\n\n"
                    "def caller() -> int:\n    return helper()\n"
                )
            },
        )
        assert list(g.callees("repro.core.a.caller")) == ["repro.core.a.helper"]

    def test_cross_module_relative_import(self, tmp_path):
        g = build_graph(
            tmp_path,
            {
                "repro/core/a.py": (
                    "from .b import helper\n\n"
                    "def caller() -> int:\n    return helper()\n"
                ),
                "repro/core/b.py": "def helper() -> int:\n    return 1\n",
            },
        )
        assert list(g.callees("repro.core.a.caller")) == ["repro.core.b.helper"]

    def test_constructor_resolves_to_init(self, tmp_path):
        g = build_graph(
            tmp_path,
            {
                "repro/core/a.py": (
                    "from .b import Widget\n\n"
                    "def make() -> object:\n    return Widget(3)\n"
                ),
                "repro/core/b.py": (
                    "class Widget:\n"
                    "    def __init__(self, n: int) -> None:\n"
                    "        self.n = n\n"
                ),
            },
        )
        assert list(g.callees("repro.core.a.make")) == [
            "repro.core.b.Widget.__init__"
        ]

    def test_self_method_resolution(self, tmp_path):
        g = build_graph(
            tmp_path,
            {
                "repro/core/a.py": (
                    "class C:\n"
                    "    def step(self) -> int:\n"
                    "        return 1\n"
                    "    def run(self) -> int:\n"
                    "        return self.step()\n"
                )
            },
        )
        assert list(g.callees("repro.core.a.C.run")) == ["repro.core.a.C.step"]

    def test_reachability(self, tmp_path):
        g = build_graph(
            tmp_path,
            {
                "repro/core/a.py": (
                    "from .b import mid\n\n"
                    "def top() -> int:\n    return mid()\n"
                ),
                "repro/core/b.py": (
                    "def mid() -> int:\n    return leaf()\n\n"
                    "def leaf() -> int:\n    return 1\n\n"
                    "def unrelated() -> int:\n    return 2\n"
                ),
            },
        )
        reach = g.reachable_from({"repro.core.a.top"})
        assert reach == {
            "repro.core.a.top",
            "repro.core.b.mid",
            "repro.core.b.leaf",
        }


class TestTaintFlows:
    def analyses(self, tmp_path, files):
        return ProjectAnalyses(build_graph(tmp_path, files))

    def test_set_iteration_is_a_hazard(self, tmp_path):
        pa = self.analyses(
            tmp_path,
            {
                "repro/core/a.py": (
                    "def f(xs: list) -> list:\n"
                    "    out = []\n"
                    "    for x in set(xs):\n"
                    "        out.append(x)\n"
                    "    return out\n"
                )
            },
        )
        info = pa.graph.functions["repro.core.a.f"]
        assert len(pa.flow.function_flow(info).hazards) == 1

    def test_sorted_launders_the_taint(self, tmp_path):
        pa = self.analyses(
            tmp_path,
            {
                "repro/core/a.py": (
                    "def f(xs: list) -> list:\n"
                    "    out = []\n"
                    "    for x in sorted(set(xs)):\n"
                    "        out.append(x)\n"
                    "    return out\n"
                )
            },
        )
        info = pa.graph.functions["repro.core.a.f"]
        assert pa.flow.function_flow(info).hazards == []

    def test_rebinding_launders(self, tmp_path):
        pa = self.analyses(
            tmp_path,
            {
                "repro/core/a.py": (
                    "def f(xs: list) -> list:\n"
                    "    keys = set(xs)\n"
                    "    keys = sorted(keys)\n"
                    "    out = []\n"
                    "    for x in keys:\n"
                    "        out.append(x)\n"
                    "    return out\n"
                )
            },
        )
        info = pa.graph.functions["repro.core.a.f"]
        assert pa.flow.function_flow(info).hazards == []

    def test_return_taint_crosses_modules(self, tmp_path):
        pa = self.analyses(
            tmp_path,
            {
                "repro/core/a.py": (
                    "from .b import keys_of\n\n"
                    "def f(d: dict) -> list:\n"
                    "    out = []\n"
                    "    for k in keys_of(d):\n"
                    "        out.append(k)\n"
                    "    return out\n"
                ),
                "repro/core/b.py": (
                    "def keys_of(d: dict) -> set:\n    return set(d)\n"
                ),
            },
        )
        info = pa.graph.functions["repro.core.a.f"]
        assert len(pa.flow.function_flow(info).hazards) == 1

    def test_nondet_source_taints(self, tmp_path):
        pa = self.analyses(
            tmp_path,
            {
                "repro/core/a.py": (
                    "import os\n\n"
                    "def f(d: str) -> list:\n"
                    "    out = []\n"
                    "    for name in os.listdir(d):\n"
                    "        out.append(name)\n"
                    "    return out\n"
                )
            },
        )
        info = pa.graph.functions["repro.core.a.f"]
        hazards = pa.flow.function_flow(info).hazards
        assert len(hazards) == 1
        assert any(t.kind == "nondet" for t in hazards[0].taints)


class TestReleaseAnalysis:
    def test_direct_release_facts(self, tmp_path):
        pa = ProjectAnalyses(
            build_graph(
                tmp_path,
                {
                    "repro/core/a.py": (
                        "def release(shm) -> None:\n"
                        "    try:\n"
                        "        shm.close()\n"
                        "    finally:\n"
                        "        shm.unlink()\n"
                    )
                },
            )
        )
        rel = pa.release.releases("repro.core.a.release")
        assert rel.get(0) == frozenset({"close", "unlink"})

    def test_elementwise_and_transitive_release(self, tmp_path):
        pa = ProjectAnalyses(
            build_graph(
                tmp_path,
                {
                    "repro/core/a.py": (
                        "def release_one(shm) -> None:\n"
                        "    shm.close()\n"
                        "    shm.unlink()\n\n"
                        "def release_all(segments) -> None:\n"
                        "    for shm in segments:\n"
                        "        release_one(shm)\n"
                    )
                },
            )
        )
        rel = pa.release.releases("repro.core.a.release_all")
        assert rel.get(0) == frozenset({"close", "unlink"})
