"""Sharded step-2 executor tests: determinism, profile plumbing, CLI."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.executor import ShardedStep2Executor
from repro.core.partition import split_entries_contiguous
from repro.core.pipeline import SeedComparisonPipeline
from repro.extend.ungapped import UngappedConfig, UngappedExtender
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.seqs.generate import random_protein_bank
from repro.seqs.sequence import Sequence, SequenceBank


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    b0 = random_protein_bank(rng, 25, mean_length=140, name_prefix="q")
    b1 = random_protein_bank(rng, 35, mean_length=140, name_prefix="s")
    return b0, b1, TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))


CFG = UngappedConfig(w=3, n=8, threshold=20)

#: Test workloads are far below the small-workload floor; pool-behaviour
#: tests disable the heuristic so they exercise real worker processes.
POOL = {"min_pairs_per_shard": 0}


class TestContiguousSplit:
    def test_ranges_cover_in_order(self, workload):
        _, _, idx = workload
        for n in (1, 2, 3, 7):
            ranges = split_entries_contiguous(idx, n)
            assert len(ranges) == n
            assert ranges[0][0] == 0
            assert ranges[-1][1] == idx.n_shared_keys
            for (_, hi), (lo2, _) in zip(ranges, ranges[1:], strict=False):
                assert hi == lo2

    def test_pair_balance(self, workload):
        _, _, idx = workload
        counts = idx.pair_counts()
        ranges = split_entries_contiguous(idx, 4)
        loads = [int(counts[lo:hi].sum()) for lo, hi in ranges]
        assert sum(loads) == idx.total_pairs
        assert max(loads) <= idx.total_pairs / 4 + int(counts.max())

    def test_empty_index(self):
        b0 = SequenceBank([Sequence.from_text("q", "AAAA")], pad=16)
        b1 = SequenceBank([Sequence.from_text("s", "WWWW")], pad=16)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        assert split_entries_contiguous(idx, 3) == [(0, 0)] * 3

    def test_invalid_parts(self, workload):
        _, _, idx = workload
        with pytest.raises(ValueError):
            split_entries_contiguous(idx, 0)


class TestShardArrays:
    def test_roundtrips_entries(self, workload):
        _, _, idx = workload
        lo, hi = 3, 11
        off0, cnt0, off1, cnt1 = idx.shard_arrays(lo, hi)
        assert cnt0.shape[0] == cnt1.shape[0] == hi - lo
        b0 = np.concatenate(([0], np.cumsum(cnt0)))
        b1 = np.concatenate(([0], np.cumsum(cnt1)))
        for i, j in enumerate(range(lo, hi)):
            entry = idx.entry(j)
            assert np.array_equal(off0[b0[i] : b0[i + 1]], entry.offsets0)
            assert np.array_equal(off1[b1[i] : b1[i + 1]], entry.offsets1)

    def test_empty_range_and_bounds(self, workload):
        _, _, idx = workload
        off0, cnt0, off1, cnt1 = idx.shard_arrays(5, 5)
        assert off0.size == cnt0.size == off1.size == cnt1.size == 0
        with pytest.raises(IndexError):
            idx.shard_arrays(0, idx.n_shared_keys + 1)


class TestShardedExecutor:
    def test_sharded_merge_order_pinned(self, workload):
        """Regression: merged sharded hits keep the single-process
        (key-ascending, offset0-major, offset1-minor) emission order."""
        b0, b1, idx = workload
        single = ShardedStep2Executor(CFG, workers=1).run(idx)
        for workers in (2, 3, 5):
            sharded = ShardedStep2Executor(CFG, workers=workers, **POOL).run(idx)
            assert np.array_equal(single.offsets0, sharded.offsets0), workers
            assert np.array_equal(single.offsets1, sharded.offsets1), workers
            assert np.array_equal(single.scores, sharded.scores), workers
        # Pin the order itself, not just cross-engine agreement: hits of one
        # entry are contiguous, offsets0-major / offsets1-minor within it.
        key_of = {}
        for j, entry in enumerate(idx.entries()):
            for o0 in entry.offsets0:
                for o1 in entry.offsets1:
                    key_of.setdefault((int(o0), int(o1)), j)
        emitted = [
            key_of[(int(a), int(b))]
            for a, b in zip(single.offsets0, single.offsets1, strict=True)
        ]
        assert emitted == sorted(emitted)

    def test_stats_match_single_process(self, workload):
        _, _, idx = workload
        single = ShardedStep2Executor(CFG, workers=1).run(idx)
        sharded = ShardedStep2Executor(CFG, workers=3, **POOL).run(idx)
        for field in ("entries", "pairs", "cells", "hits"):
            assert getattr(single.stats, field) == getattr(sharded.stats, field)

    def test_timings_recorded_per_shard(self, workload):
        _, _, idx = workload
        ex = ShardedStep2Executor(CFG, workers=3, **POOL)
        hits = ex.run(idx)
        assert len(ex.last_timings) == 3
        assert [t.shard for t in ex.last_timings] == [0, 1, 2]
        assert sum(t.entries for t in ex.last_timings) == idx.n_shared_keys
        assert sum(t.pairs for t in ex.last_timings) == idx.total_pairs
        assert sum(t.hits for t in ex.last_timings) == len(hits)
        assert all(t.wall_seconds >= 0 for t in ex.last_timings)
        assert all(t.batches >= 1 for t in ex.last_timings)

    def test_single_worker_records_one_shard(self, workload):
        _, _, idx = workload
        ex = ShardedStep2Executor(CFG, workers=1)
        hits = ex.run(idx)
        assert len(ex.last_timings) == 1
        assert ex.last_timings[0].pairs == idx.total_pairs
        assert ex.last_timings[0].hits == len(hits)

    def test_more_workers_than_entries_degrades_gracefully(self):
        b0 = SequenceBank([Sequence.from_text("q", "MKVLAWMKVLAW")], pad=32)
        b1 = SequenceBank([Sequence.from_text("s", "MKVLAW")], pad=32)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        cfg = UngappedConfig(w=4, n=4, threshold=5)
        ref = UngappedExtender(cfg).run_per_key(idx)
        hits = ShardedStep2Executor(cfg, workers=64).run(idx)
        assert np.array_equal(ref.offsets0, hits.offsets0)
        assert np.array_equal(ref.scores, hits.scores)

    def test_empty_index_short_circuits(self):
        b0 = SequenceBank([Sequence.from_text("q", "AAAA")], pad=16)
        b1 = SequenceBank([Sequence.from_text("s", "WWWW")], pad=16)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        hits = ShardedStep2Executor(CFG, workers=4).run(idx)
        assert len(hits) == 0
        assert hits.stats.pairs == 0

    def test_pool_clamps_shards_to_entry_count(self):
        # Call _run_pool directly (run() would route this tiny index to the
        # local path): with more workers than shared keys, shard count is
        # clamped and no worker is spawned for an empty range.
        b0 = SequenceBank(
            [Sequence.from_text("q", "MKVLAWTRQMKVLAW")], pad=32
        )
        b1 = SequenceBank(
            [Sequence.from_text("s", "AAMKVLAWTRQAA")], pad=32
        )
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        cfg = UngappedConfig(w=4, n=4, threshold=5)
        assert 0 < idx.n_shared_keys < 64
        ex = ShardedStep2Executor(cfg, workers=64)
        hits = ex._run_pool(idx)
        ref = ShardedStep2Executor(cfg, workers=1).run(idx)
        assert np.array_equal(ref.offsets0, hits.offsets0)
        assert np.array_equal(ref.offsets1, hits.offsets1)
        assert np.array_equal(ref.scores, hits.scores)
        assert len(ex.last_timings) <= idx.n_shared_keys
        assert all(t.entries > 0 for t in ex.last_timings)


class TestSmallWorkloadHeuristic:
    """BENCH_step2 2-worker regression fix: tiny workloads skip the pool."""

    def test_small_workload_routes_to_local(self, workload):
        _, _, idx = workload
        assert idx.total_pairs < 1 << 18  # precondition for the default
        ex = ShardedStep2Executor(CFG, workers=3)
        hits = ex.run(idx)
        ref = ShardedStep2Executor(CFG, workers=1).run(idx)
        assert np.array_equal(ref.offsets0, hits.offsets0)
        assert np.array_equal(ref.scores, hits.scores)
        assert [t.via for t in ex.last_timings] == ["local"]
        health = ex.last_health
        assert health.shards == 1
        assert health.small_workload_fallbacks == 1
        assert health.healthy  # a sizing decision, not a fault
        assert not health.degraded

    def test_zero_disables_heuristic(self, workload):
        _, _, idx = workload
        ex = ShardedStep2Executor(CFG, workers=3, min_pairs_per_shard=0)
        ex.run(idx)
        assert all(t.via == "pool" for t in ex.last_timings)
        assert ex.last_health.small_workload_fallbacks == 0

    def test_tiny_floor_keeps_pool(self, workload):
        _, _, idx = workload
        ex = ShardedStep2Executor(CFG, workers=3, min_pairs_per_shard=1)
        ex.run(idx)
        assert all(t.via == "pool" for t in ex.last_timings)

    def test_decision_reaches_metrics(self, workload):
        from repro.obs.metrics import MetricsRegistry, activate

        _, _, idx = workload
        registry = MetricsRegistry()
        with activate(registry):
            ShardedStep2Executor(CFG, workers=3).run(idx)
        counter = registry.counter(
            "step2_supervisor_events_total", kind="small_workload_fallbacks"
        )
        assert counter.value == 1


class TestBackendPlumbing:
    def test_auto_is_resolved_eagerly(self):
        ex = ShardedStep2Executor(UngappedConfig(w=3, n=8, backend="auto"))
        assert ex.config.backend == "fused"

    def test_unknown_backend_fails_at_construction(self):
        from repro.extend.backends import BackendUnavailable

        with pytest.raises(BackendUnavailable, match="unknown"):
            ShardedStep2Executor(UngappedConfig(w=3, n=8, backend="warp"))

    @pytest.mark.parametrize("backend", ["per_key", "int16"])
    def test_workers_honor_parent_backend(self, workload, backend):
        _, _, idx = workload
        cfg = UngappedConfig(w=3, n=8, threshold=20, backend=backend)
        ex = ShardedStep2Executor(cfg, workers=2, **POOL)
        hits = ex.run(idx)
        ref = ShardedStep2Executor(CFG, workers=1).run(idx)
        assert np.array_equal(ref.offsets0, hits.offsets0)
        assert np.array_equal(ref.offsets1, hits.offsets1)
        assert np.array_equal(ref.scores, hits.scores)
        assert [t.backend for t in ex.last_timings] == [backend, backend]
        assert all(t.via == "pool" for t in ex.last_timings)

    def test_local_timing_records_backend(self, workload):
        _, _, idx = workload
        ex = ShardedStep2Executor(CFG, workers=1)
        ex.run(idx)
        assert ex.last_timings[0].backend == "fused"


class TestFaultInjection:
    """End-to-end chaos runs: real worker processes, injected faults.

    The invariant under test is the acceptance criterion of the supervision
    layer: whatever the plan injects, the sharded run completes, the
    retries are recorded in :class:`~repro.core.profile.RunHealth`, and the
    merged hits are bit-identical — offsets, scores, order — to the
    fault-free single-process run.
    """

    @pytest.fixture(scope="class")
    def baseline(self, workload):
        _, _, idx = workload
        return ShardedStep2Executor(CFG, workers=1).run(idx)

    @staticmethod
    def assert_bit_identical(expected, actual):
        assert np.array_equal(expected.offsets0, actual.offsets0)
        assert np.array_equal(expected.offsets1, actual.offsets1)
        assert np.array_equal(expected.scores, actual.scores)

    def test_crash_and_hang_recovered(self, workload, baseline):
        from repro.core.faults import FaultKind, FaultPlan, FaultSpec
        from repro.core.supervisor import SupervisorConfig

        _, _, idx = workload
        plan = FaultPlan(
            (
                FaultSpec(FaultKind.CRASH, shard=1, attempt=0),
                FaultSpec(FaultKind.HANG, shard=0, attempt=0,
                          hang_seconds=30.0),
            ),
            seed=9,
        )
        ex = ShardedStep2Executor(
            CFG, workers=3,
            supervisor=SupervisorConfig(shard_timeout=2.0, max_retries=2),
            fault_plan=plan, **POOL,
        )
        self.assert_bit_identical(baseline, ex.run(idx))
        health = ex.last_health
        assert health.shards == 3
        # One crash poisons every in-flight future, so counts are lower
        # bounds, not exact: at least the injected crash and one retry
        # round must be recorded, and the broken pool must be rebuilt.
        assert health.crashes >= 1
        assert health.retries >= 1
        assert health.pool_rebuilds >= 1
        assert health.fallback_shards == 0 and not health.degraded
        assert all(t.via == "pool" for t in ex.last_timings)
        assert any(t.attempts > 1 for t in ex.last_timings)

    def test_truncate_and_corrupt_bank_recovered(self, workload, baseline):
        from repro.core.faults import FaultKind, FaultPlan, FaultSpec

        _, _, idx = workload
        plan = FaultPlan(
            (
                FaultSpec(FaultKind.TRUNCATE, shard=2, attempt=0, drop=3),
                FaultSpec(FaultKind.CORRUPT_BANK, shard=0, attempt=0),
            ),
            seed=5,
        )
        ex = ShardedStep2Executor(CFG, workers=3, fault_plan=plan, **POOL)
        self.assert_bit_identical(baseline, ex.run(idx))
        health = ex.last_health
        assert health.truncated == 1
        assert health.corrupt == 1
        assert health.retries >= 1
        assert health.fallback_shards == 0

    def test_unrecoverable_crash_falls_back_to_local(self, workload, baseline):
        from repro.core.faults import FaultKind, FaultPlan, FaultSpec
        from repro.core.supervisor import SupervisorConfig

        _, _, idx = workload
        # attempt=None fires on every dispatch: the pool can never score
        # shard 0, so the run must complete through the in-process engine.
        plan = FaultPlan(
            (FaultSpec(FaultKind.CRASH, shard=0, attempt=None),), seed=1
        )
        ex = ShardedStep2Executor(
            CFG, workers=3,
            supervisor=SupervisorConfig(max_retries=1, backoff_base=0.001),
            fault_plan=plan, **POOL,
        )
        self.assert_bit_identical(baseline, ex.run(idx))
        health = ex.last_health
        assert health.fallback_shards >= 1 and health.degraded
        fallbacks = [t for t in ex.last_timings if t.via == "local"]
        assert fallbacks and any(t.shard == 0 for t in fallbacks)

    def test_random_plan_keeps_output_bit_identical(self, workload, baseline):
        """Chaos-CI entry point: any FaultPlan.random seed must be safe.

        The seed rotates via REPRO_FAULT_SEED in the chaos job; locally it
        defaults to a fixed value so the suite stays deterministic.
        """
        import os as _os

        from repro.core.faults import FaultPlan
        from repro.core.supervisor import SupervisorConfig

        _, _, idx = workload
        seed = int(_os.environ.get("REPRO_FAULT_SEED", "2026"))
        plan = FaultPlan.random(seed=seed, shards=3, n_faults=2,
                                hang_seconds=3.0)
        ex = ShardedStep2Executor(
            CFG, workers=3,
            supervisor=SupervisorConfig(shard_timeout=1.0, max_retries=3,
                                        backoff_base=0.01),
            fault_plan=plan, **POOL,
        )
        self.assert_bit_identical(baseline, ex.run(idx))
        assert ex.last_health.shards == 3

    def test_pool_unavailable_falls_back_with_warning(
        self, workload, baseline, monkeypatch
    ):
        _, _, idx = workload
        ex = ShardedStep2Executor(CFG, workers=3, **POOL)

        def no_pool(index):
            raise OSError("no /dev/shm in this environment")

        monkeypatch.setattr(ex, "_run_pool", no_pool)
        with pytest.warns(RuntimeWarning, match="falling back to in-process"):
            hits = ex.run(idx)
        self.assert_bit_identical(baseline, hits)
        assert ex.last_health.shards == 1
        assert [t.via for t in ex.last_timings] == ["local"]

    def test_single_shared_key_short_circuits_to_local(self):
        b0 = SequenceBank([Sequence.from_text("q", "MKVLAWMKVLAW")], pad=32)
        b1 = SequenceBank([Sequence.from_text("s", "AAMKVLWW")], pad=32)
        idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4))
        assert idx.n_shared_keys == 1
        cfg = UngappedConfig(w=4, n=4, threshold=5)
        ex = ShardedStep2Executor(cfg, workers=4)
        hits = ex.run(idx)
        ref = UngappedExtender(cfg).run_per_key(idx)
        assert np.array_equal(ref.offsets0, hits.offsets0)
        assert np.array_equal(ref.scores, hits.scores)
        assert ex.last_health == type(ex.last_health)(shards=1)
        assert [t.via for t in ex.last_timings] == ["local"]

    def test_health_reset_between_runs(self, workload):
        from repro.core.faults import FaultKind, FaultPlan, FaultSpec

        _, _, idx = workload
        plan = FaultPlan((FaultSpec(FaultKind.TRUNCATE, shard=1, attempt=0),))
        faulted = ShardedStep2Executor(CFG, workers=3, fault_plan=plan, **POOL)
        faulted.run(idx)
        assert not faulted.last_health.healthy
        clean = ShardedStep2Executor(CFG, workers=3, **POOL)
        clean.run(idx)
        assert clean.last_health.healthy
        assert clean.last_health.shards == 3


class TestPipelineIntegration:
    def test_workers_produce_identical_reports(self, workload):
        b0, b1, _ = workload
        base = PipelineConfig.exact_seed(3, flank=8, ungapped_threshold=20)
        r1 = SeedComparisonPipeline(base).compare_banks(b0, b1)
        r2 = SeedComparisonPipeline(
            base.with_(workers=2)
        ).compare_banks(b0, b1)
        assert len(r1) == len(r2)
        for a, b in zip(r1.alignments, r2.alignments, strict=True):
            assert (a.seq0_id, a.seq1_id, a.start0, a.end0, a.raw_score) == (
                b.seq0_id, b.seq1_id, b.start0, b.end0, b.raw_score
            )

    def test_profile_carries_shard_timings(self, workload):
        b0, b1, _ = workload
        cfg = PipelineConfig.exact_seed(3, flank=8, ungapped_threshold=20,
                                        workers=2, min_pairs_per_shard=0)
        pipe = SeedComparisonPipeline(cfg)
        pipe.compare_banks(b0, b1)
        shards = pipe.profile.step2_shards
        assert len(shards) == 2
        assert sum(s.pairs for s in shards) == pipe.last_hits.stats.pairs
        assert pipe.profile.step2_shard_imbalance() >= 1.0

    def test_profile_carries_run_health(self, workload):
        b0, b1, _ = workload
        cfg = PipelineConfig.exact_seed(3, flank=8, ungapped_threshold=20,
                                        workers=2, min_pairs_per_shard=0)
        pipe = SeedComparisonPipeline(cfg)
        pipe.compare_banks(b0, b1)
        health = pipe.profile.run_health
        assert health.shards == 2
        assert health.healthy

    def test_search_mode_exposes_run_health(self, workload):
        from repro.core.modes import BlastFamilySearch

        b0, b1, _ = workload
        cfg = PipelineConfig.exact_seed(3, flank=8, ungapped_threshold=20,
                                        workers=2, min_pairs_per_shard=0)
        search = BlastFamilySearch(cfg, seg=None)
        assert search.last_run_health.shards == 0  # nothing ran yet
        search.blastp(b0, b1)
        assert search.last_run_health.shards == 2
        assert search.last_run_health.healthy

    def test_config_supervisor_plumbing(self):
        from repro.core.faults import FaultPlan
        from repro.core.supervisor import SupervisorConfig

        cfg = PipelineConfig(shard_timeout=7.5, max_retries=5)
        sup = cfg.supervisor_config()
        assert isinstance(sup, SupervisorConfig)
        assert sup.shard_timeout == 7.5 and sup.max_retries == 5
        assert cfg.fault_plan is None
        plan = FaultPlan(seed=3)
        assert cfg.with_(fault_plan=plan).fault_plan == plan

    def test_profile_merge_concatenates_shards(self, workload):
        b0, b1, _ = workload
        cfg = PipelineConfig.exact_seed(3, flank=8, ungapped_threshold=20,
                                        workers=2, min_pairs_per_shard=0)
        p1 = SeedComparisonPipeline(cfg)
        p1.compare_banks(b0, b1)
        p2 = SeedComparisonPipeline(cfg)
        p2.compare_banks(b0, b1)
        p1.profile.merge(p2.profile)
        assert len(p1.profile.step2_shards) == 4


class TestRascManyShards:
    def test_round_robin_matches_dual_for_two(self, workload):
        from repro.psc.schedule import PscArrayConfig
        from repro.rasc.platform import Rasc100

        b0, b1, _ = workload
        halves_model = ContiguousSeedModel(3)
        from repro.core.partition import split_bank

        halves = split_bank(b0, 2)
        indexes = [
            TwoBankIndex.build(h, b1, halves_model) for h in halves
        ]
        psc = PscArrayConfig(n_pes=16, window=3 + 16, threshold=20)
        blade = Rasc100()
        blade.load_bitstream(psc, fpga_id=0)
        blade.load_bitstream(psc, fpga_id=1)
        runs_many, wall_many = blade.run_step2_many(indexes, flank=8)
        blade2 = Rasc100()
        blade2.load_bitstream(psc, fpga_id=0)
        blade2.load_bitstream(psc, fpga_id=1)
        runs_dual, wall_dual = blade2.run_step2_dual(indexes, flank=8)
        assert len(runs_many) == 2
        for rm, rd in zip(runs_many, runs_dual, strict=True):
            assert np.array_equal(rm.hits.offsets0, rd.hits.offsets0)
            assert np.array_equal(rm.hits.scores, rd.hits.scores)
        assert wall_many == pytest.approx(wall_dual, rel=1e-9)

    def test_four_shards_queue_on_two_fpgas(self, workload):
        from repro.psc.schedule import PscArrayConfig
        from repro.rasc.platform import Rasc100

        _, _, idx = workload
        # Building per-shard indexes from bank splits is costly here;
        # reuse the same joint index four times as four queued workloads.
        psc = PscArrayConfig(n_pes=16, window=3 + 16, threshold=20)
        blade = Rasc100()
        blade.load_bitstream(psc, fpga_id=0)
        blade.load_bitstream(psc, fpga_id=1)
        runs, wall = blade.run_step2_many([idx, idx, idx, idx], flank=8)
        assert len(runs) == 4
        assert wall > 0
        # Two queues of two workloads each: blade wall is at least one
        # queue's two sequential computes.
        assert wall >= runs[0].compute_seconds + runs[2].compute_seconds
        assert blade.run_step2_many([], flank=8) == ([], 0.0)


class TestCli:
    def test_workers_flags_parse_and_run(self, tmp_path, capsys):
        from repro.cli import main
        from repro.seqs.fasta import write_fasta
        from repro.seqs.generate import random_genome, random_protein_bank

        rng = np.random.default_rng(5)
        bank = random_protein_bank(rng, 8, mean_length=120)
        genome = random_genome(rng, 30_000)
        qpath = tmp_path / "q.fasta"
        gpath = tmp_path / "g.fasta"
        write_fasta(list(bank), str(qpath))
        write_fasta([genome], str(gpath))
        rc = main(
            [
                "compare", str(qpath), str(gpath),
                "--workers", "2", "--batch-pairs", "4096",
                "--threshold", "30", "--min-pairs-per-shard", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "# step2 shards: 2 workers" in out
        assert "shard 0:" in out and "shard 1:" in out
        assert "attempts=1 via=pool" in out
        assert "# step2 health: 2 shards, ok" in out

    def test_supervision_flags_parse_and_run(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.faults import FaultKind, FaultPlan, FaultSpec
        from repro.seqs.fasta import write_fasta
        from repro.seqs.generate import random_genome, random_protein_bank

        rng = np.random.default_rng(5)
        bank = random_protein_bank(rng, 8, mean_length=120)
        genome = random_genome(rng, 30_000)
        qpath = tmp_path / "q.fasta"
        gpath = tmp_path / "g.fasta"
        write_fasta(list(bank), str(qpath))
        write_fasta([genome], str(gpath))
        plan = FaultPlan((FaultSpec(FaultKind.TRUNCATE, shard=0, attempt=0),),
                         seed=4)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json(), encoding="ascii")
        rc = main(
            [
                "compare", str(qpath), str(gpath),
                "--workers", "2", "--threshold", "30",
                "--shard-timeout", "30", "--max-retries", "3",
                "--fault-plan", str(plan_path),
                "--min-pairs-per-shard", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "# step2 health:" in out
        assert "1 truncated result" in out
        assert "attempts=2" in out

    def test_fault_plan_inline_json_and_bad_values(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.faults import FaultPlan
        from repro.seqs.fasta import write_fasta
        from repro.seqs.generate import random_genome, random_protein_bank

        rng = np.random.default_rng(5)
        bank = random_protein_bank(rng, 6, mean_length=100)
        genome = random_genome(rng, 20_000)
        qpath = tmp_path / "q.fasta"
        gpath = tmp_path / "g.fasta"
        write_fasta(list(bank), str(qpath))
        write_fasta([genome], str(gpath))
        rc = main(
            [
                "compare", str(qpath), str(gpath),
                "--workers", "2", "--threshold", "30",
                "--fault-plan", FaultPlan(seed=1).to_json().replace("\n", " "),
            ]
        )
        assert rc == 0
        assert "# step2 health:" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["compare", str(qpath), str(gpath), "--shard-timeout", "0"])
        with pytest.raises(SystemExit):
            main(["compare", str(qpath), str(gpath), "--max-retries", "-1"])
