"""Index diagnostics and cluster-model tests."""

import numpy as np
import pytest

from repro.index.kmer import BankIndex, ContiguousSeedModel, TwoBankIndex
from repro.index.stats import index_stats, joint_stats, occupancy_curve
from repro.index.subset_seed import DEFAULT_SUBSET_SEED
from repro.rasc.cluster import BladeSpec, ClusterModel
from repro.rasc.host import HostCostModel
from repro.seqs.generate import random_protein_bank
from repro.seqs.sequence import Sequence, SequenceBank


@pytest.fixture(scope="module")
def joint_index():
    rng = np.random.default_rng(4)
    b0 = random_protein_bank(rng, 60, mean_length=200, name_prefix="q")
    b1 = random_protein_bank(rng, 120, mean_length=200, name_prefix="s")
    return TwoBankIndex.build(b0, b1, DEFAULT_SUBSET_SEED), b0, b1


class TestIndexStats:
    def test_basic_invariants(self, joint_index):
        idx, b0, _ = joint_index
        st = index_stats(idx.index0)
        assert st.n_anchors == idx.index0.n_anchors
        assert st.n_keys <= st.key_space
        assert 0 < st.load_factor <= 1
        assert st.p50_length <= st.p99_length <= st.max_length
        assert 0 <= st.gini < 1
        assert st.mean_length == pytest.approx(st.n_anchors / st.n_keys)

    def test_uniform_bank_low_gini(self):
        # A bank of one repeated word has every anchor under one key.
        bank = SequenceBank([Sequence.from_text("s", "MKVL" * 50)], pad=8)
        st = index_stats(BankIndex(bank, ContiguousSeedModel(4)))
        # Only 4 distinct words (rotations) -> nearly balanced lists.
        assert st.gini < 0.2

    def test_empty_index(self):
        bank = SequenceBank([], pad=8)
        st = index_stats(BankIndex(bank, ContiguousSeedModel(4)))
        assert st.n_anchors == 0
        assert st.gini == 0.0

    def test_describe_renders(self, joint_index):
        idx, _, _ = joint_index
        text = index_stats(idx.index0).describe()
        assert "anchors=" in text and "gini" in text


class TestJointStats:
    def test_pairs_match_index(self, joint_index):
        idx, _, _ = joint_index
        st = joint_stats(idx)
        assert st.total_pairs == idx.total_pairs
        assert st.shared_keys == idx.n_shared_keys
        assert 0 < st.top1pct_pair_share <= 1

    def test_empty_join(self):
        b0 = SequenceBank([Sequence.from_text("a", "MMMMMM")], pad=8)
        b1 = SequenceBank([Sequence.from_text("b", "WWWWWW")], pad=8)
        st = joint_stats(TwoBankIndex.build(b0, b1, ContiguousSeedModel(4)))
        assert st.total_pairs == 0


class TestOccupancyCurve:
    def test_shape_and_monotonic_utilisation(self, joint_index):
        idx, _, _ = joint_index
        curve = occupancy_curve(idx, pe_counts=(16, 64, 192))
        assert len(curve) == 3
        utils = [u for _, u, _ in curve]
        # Short index lists: utilisation falls as the array grows.
        assert utils == sorted(utils, reverse=True)
        assert all(t > 0 for _, _, t in curve)


class TestClusterModel:
    @pytest.fixture(scope="class")
    def model_inputs(self):
        rng = np.random.default_rng(8)
        b0 = random_protein_bank(rng, 100, mean_length=250, name_prefix="q")
        b1 = random_protein_bank(rng, 200, mean_length=250, name_prefix="s")
        idx = TwoBankIndex.build(b0, b1, DEFAULT_SUBSET_SEED)
        k0s, k1s = idx.list_length_pairs()
        cm = ClusterModel(BladeSpec(), HostCostModel(), pair_overhead_cycles=2.9)
        return cm, k0s, k1s, b0.total_residues, b1.total_residues

    def test_more_blades_never_slower(self, model_inputs):
        cm, k0s, k1s, bank_res, gen_res = model_inputs
        walls = [
            cm.project(n, k0s, k1s, bank_res, gen_res, 10**6, 100).wall_seconds
            for n in (1, 2, 4)
        ]
        assert walls[1] <= walls[0] * 1.01
        assert walls[2] <= walls[1] * 1.01

    def test_sublinear_scaling(self, model_inputs):
        """Replicated genome indexing bounds the scaling — the paper's
        dispatch question made quantitative."""
        cm, k0s, k1s, bank_res, gen_res = model_inputs
        w1 = cm.project(1, k0s, k1s, bank_res, gen_res, 10**6, 100).wall_seconds
        w8 = cm.project(8, k0s, k1s, bank_res, gen_res, 10**6, 100).wall_seconds
        assert 1.0 < w1 / w8 < 8.0

    def test_blade_count_validation(self, model_inputs):
        cm, k0s, k1s, bank_res, gen_res = model_inputs
        with pytest.raises(ValueError):
            cm.project(0, k0s, k1s, bank_res, gen_res, 0, 0)

    def test_merge_term(self, model_inputs):
        cm, k0s, k1s, bank_res, gen_res = model_inputs
        small = cm.project(2, k0s, k1s, bank_res, gen_res, 0, 10)
        big = cm.project(2, k0s, k1s, bank_res, gen_res, 0, 10**7)
        assert big.merge_seconds > small.merge_seconds
        assert big.wall_seconds > small.wall_seconds
