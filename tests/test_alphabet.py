"""Alphabet and codec tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seqs.alphabet import (
    AA_LETTERS,
    AMINO,
    DNA,
    DNA_LETTERS,
    GAP_CODE,
    STOP_CODE,
    UNKNOWN_AA_CODE,
    decode_dna,
    decode_protein,
    encode_dna,
    encode_protein,
)


class TestCodeAssignment:
    def test_canonical_residues_are_first_twenty(self):
        assert AA_LETTERS[:20] == "ARNDCQEGHILKMFPSTWYV"

    def test_special_codes(self):
        assert AA_LETTERS[STOP_CODE] == "*"
        assert AA_LETTERS[GAP_CODE] == "-"
        assert AA_LETTERS[UNKNOWN_AA_CODE] == "X"
        assert GAP_CODE == 24  # the last code — kernels rely on this

    def test_alphabet_sizes(self):
        assert AMINO.size == 25
        assert DNA.size == 5

    def test_every_letter_unique(self):
        assert len(set(AA_LETTERS)) == len(AA_LETTERS)
        assert len(set(DNA_LETTERS)) == len(DNA_LETTERS)


class TestEncodeDecode:
    def test_protein_roundtrip(self):
        text = "MKVLAWTRQ*-BZX"
        assert decode_protein(encode_protein(text)) == text

    def test_dna_roundtrip(self):
        text = "ACGTNACGT"
        assert decode_dna(encode_dna(text)) == text

    def test_lowercase_accepted(self):
        assert np.array_equal(encode_protein("mkvl"), encode_protein("MKVL"))
        assert np.array_equal(encode_dna("acgt"), encode_dna("ACGT"))

    def test_unknown_characters_fall_back(self):
        assert encode_protein("J")[0] == UNKNOWN_AA_CODE
        assert encode_protein("?")[0] == UNKNOWN_AA_CODE
        assert encode_dna("R")[0] == DNA.fallback_code

    def test_empty_input(self):
        assert encode_protein("").shape == (0,)
        assert decode_protein(np.empty(0, dtype=np.uint8)) == ""

    def test_bytes_input(self):
        assert np.array_equal(encode_protein(b"MKV"), encode_protein("MKV"))

    def test_decode_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            decode_protein(np.array([25], dtype=np.uint8))
        with pytest.raises(ValueError, match="out of range"):
            decode_dna(np.array([5], dtype=np.uint8))

    def test_encode_returns_uint8(self):
        assert encode_protein("MKV").dtype == np.uint8


class TestValidation:
    def test_is_valid_true(self):
        assert AMINO.is_valid(encode_protein("MKVLA"))

    def test_is_valid_false(self):
        assert not AMINO.is_valid(np.array([30], dtype=np.int64))

    def test_is_valid_empty(self):
        assert AMINO.is_valid(np.empty(0, dtype=np.uint8))


@given(st.text(alphabet=AA_LETTERS, max_size=200))
def test_protein_roundtrip_property(text):
    assert decode_protein(encode_protein(text)) == text


@given(st.text(alphabet=DNA_LETTERS, max_size=200))
def test_dna_roundtrip_property(text):
    assert decode_dna(encode_dna(text)) == text


@given(st.binary(max_size=100))
def test_encode_never_crashes_on_arbitrary_bytes(data):
    codes = AMINO.encode(data)
    assert codes.shape == (len(data),)
    assert AMINO.is_valid(codes)
