"""Shard supervisor tests: retry/timeout/fallback state machine, health.

These drive :class:`~repro.core.supervisor.ShardSupervisor` against a fake
pool (real :class:`concurrent.futures.Future` objects, no processes), so
every failure mode is exercised deterministically and in milliseconds.  The
end-to-end chaos runs against real worker processes live in
``tests/test_executor.py``.
"""

import concurrent.futures as cf
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.core.faults import BankCorruption
from repro.core.profile import RunHealth
from repro.core.render import render_run_health
from repro.core.supervisor import (
    ShardSupervisor,
    SupervisorConfig,
    _validate_result,
)

FAST = SupervisorConfig(shard_timeout=0.2, max_retries=2, backoff_base=0.001)


def ok_result(shard, n=3):
    """A worker result whose arrays agree with its reported stats."""
    arr = np.arange(n, dtype=np.int64)
    return (shard, arr, arr, arr.astype(np.int32), (1, 4, 9, n), 0.01, 1, 4)


def truncated_result(shard, n=3, drop=1):
    """Arrays one short of the stats' hit count — must be rejected."""
    good = ok_result(shard, n)
    return good[:1] + tuple(a[:-drop] for a in good[1:4]) + good[4:]


class FakePool:
    """Pool double: behaviour(shard, attempt) decides each future's fate."""

    def __init__(self, behaviour):
        self.behaviour = behaviour
        self.submitted = []
        self.shutdowns = 0

    def submit(self, fn, shard, attempt, *payload):
        self.submitted.append((shard, attempt))
        action, value = self.behaviour(shard, attempt)
        if action == "broken-submit":
            raise BrokenProcessPool("pool died at submit")
        future = cf.Future()
        if action == "ok":
            future.set_result(value)
        elif action == "raise":
            future.set_exception(value)
        # "hang": the future never resolves; result(timeout) must trip.
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns += 1


class Harness:
    """Wire a supervisor to fake pools and record construction/fallbacks."""

    def __init__(self, behaviour, config=FAST, shards=(0, 1)):
        self.pools = []
        self.local_scored = []
        self.behaviour = behaviour

        def make_pool():
            pool = FakePool(self.behaviour)
            self.pools.append(pool)
            return pool

        def local_score(shard):
            self.local_scored.append(shard)
            return ok_result(shard)

        self.supervisor = ShardSupervisor(
            config, make_pool, lambda *a: None, local_score
        )
        self.payloads = {s: () for s in shards}
        self.pair_counts = {s: 100 for s in shards}

    def run(self):
        return self.supervisor.run(self.payloads, self.pair_counts)


class TestSupervisorConfig:
    def test_explicit_timeout_wins(self):
        cfg = SupervisorConfig(shard_timeout=3.5)
        assert cfg.deadline_for(0) == 3.5
        assert cfg.deadline_for(10**9) == 3.5

    def test_derived_deadline_scales_with_pairs(self):
        cfg = SupervisorConfig(min_timeout=2.0, seconds_per_pair=1e-3)
        assert cfg.deadline_for(0) == pytest.approx(2.0)
        assert cfg.deadline_for(1000) == pytest.approx(3.0)

    def test_backoff_is_exponential(self):
        cfg = SupervisorConfig(backoff_base=0.1, backoff_factor=2.0)
        assert cfg.backoff(1) == pytest.approx(0.1)
        assert cfg.backoff(2) == pytest.approx(0.2)
        assert cfg.backoff(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError, match="shard_timeout"):
            SupervisorConfig(shard_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorConfig(max_retries=-1)


class TestValidateResult:
    def test_accepts_consistent_result(self):
        assert _validate_result(ok_result(0))

    def test_rejects_truncated_arrays(self):
        assert not _validate_result(truncated_result(0))

    def test_rejects_garbage_shapes(self):
        assert not _validate_result(None)
        assert not _validate_result((0, 1))
        assert not _validate_result((0, "a", "b", "c", "d"))


class TestShardSupervisor:
    def test_clean_run(self):
        h = Harness(lambda s, a: ("ok", ok_result(s)))
        outcomes, health = h.run()
        assert [o.shard for o in outcomes] == [0, 1]
        assert all(o.via == "pool" and o.attempts == 1 for o in outcomes)
        assert health.healthy and health.shards == 2
        assert len(h.pools) == 1 and not h.local_scored

    def test_outcomes_sorted_by_shard(self):
        h = Harness(lambda s, a: ("ok", ok_result(s)), shards=(3, 0, 2))
        outcomes, _ = h.run()
        assert [o.shard for o in outcomes] == [0, 2, 3]

    def test_worker_exception_retries_on_same_pool(self):
        def behaviour(shard, attempt):
            if shard == 1 and attempt == 0:
                return "raise", ValueError("flaky")
            return "ok", ok_result(shard)

        h = Harness(behaviour)
        outcomes, health = h.run()
        assert outcomes[1].attempts == 2 and outcomes[1].via == "pool"
        assert outcomes[0].attempts == 1
        assert health.crashes == 1 and health.retries == 1
        assert health.pool_rebuilds == 0 and len(h.pools) == 1

    def test_bank_corruption_counted_separately(self):
        def behaviour(shard, attempt):
            if shard == 0 and attempt == 0:
                return "raise", BankCorruption("digest mismatch")
            return "ok", ok_result(shard)

        _, health = Harness(behaviour).run()
        assert health.corrupt == 1 and health.crashes == 0
        assert health.retries == 1

    def test_truncated_result_rejected_and_retried(self):
        def behaviour(shard, attempt):
            if shard == 0 and attempt == 0:
                return "ok", truncated_result(shard)
            return "ok", ok_result(shard)

        outcomes, health = Harness(behaviour).run()
        assert health.truncated == 1 and outcomes[0].attempts == 2
        assert np.array_equal(outcomes[0].result[3], ok_result(0)[3])

    def test_timeout_tears_pool_down_and_rebuilds(self):
        def behaviour(shard, attempt):
            if shard == 1 and attempt == 0:
                return "hang", None
            return "ok", ok_result(shard)

        h = Harness(behaviour)
        outcomes, health = h.run()
        assert health.timeouts == 1 and health.pool_rebuilds == 1
        assert len(h.pools) == 2  # hung worker poisons the first pool
        assert h.pools[0].shutdowns >= 1
        assert outcomes[1].via == "pool" and outcomes[1].attempts == 2

    def test_broken_pool_future_rebuilds(self):
        def behaviour(shard, attempt):
            if attempt == 0:
                return "raise", BrokenProcessPool("worker died")
            return "ok", ok_result(shard)

        h = Harness(behaviour)
        outcomes, health = h.run()
        assert health.crashes == 2 and health.pool_rebuilds == 1
        assert all(o.via == "pool" for o in outcomes)

    def test_broken_submit_counts_unsubmitted_as_crashes(self):
        calls = {"n": 0}

        def behaviour(shard, attempt):
            calls["n"] += 1
            if calls["n"] == 1:
                return "broken-submit", None
            return "ok", ok_result(shard)

        h = Harness(behaviour)
        outcomes, health = h.run()
        assert health.crashes == 2  # neither shard was submitted that round
        assert health.pool_rebuilds == 1
        assert [o.via for o in outcomes] == ["pool", "pool"]

    def test_exhausted_retries_fall_back_to_local(self):
        h = Harness(
            lambda s, a: ("raise", RuntimeError("always down")),
            config=SupervisorConfig(
                shard_timeout=0.2, max_retries=1, backoff_base=0.001
            ),
        )
        outcomes, health = h.run()
        assert all(o.via == "local" for o in outcomes)
        assert health.fallback_shards == 2 and health.degraded
        assert sorted(h.local_scored) == [0, 1]
        # 1 initial + 1 retry dispatches per shard before giving up.
        assert health.crashes == 4 and health.retries == 2

    def test_only_failing_shard_falls_back(self):
        def behaviour(shard, attempt):
            if shard == 1:
                return "raise", RuntimeError("shard 1 cursed")
            return "ok", ok_result(shard)

        h = Harness(behaviour)
        outcomes, health = h.run()
        assert outcomes[0].via == "pool" and outcomes[0].attempts == 1
        assert outcomes[1].via == "local"
        assert health.fallback_shards == 1
        assert h.local_scored == [1]

    def test_zero_retries_goes_straight_to_local(self):
        h = Harness(
            lambda s, a: ("raise", RuntimeError("down")),
            config=SupervisorConfig(shard_timeout=0.2, max_retries=0),
        )
        outcomes, health = h.run()
        assert health.retries == 0 and health.fallback_shards == 2
        assert all(o.via == "local" for o in outcomes)


class TestRunHealth:
    def test_healthy_and_degraded_predicates(self):
        assert RunHealth(shards=3).healthy
        assert not RunHealth(shards=3, retries=1).healthy
        assert not RunHealth(shards=3).degraded
        faulted = RunHealth(shards=3, fallback_shards=1)
        assert faulted.degraded and not faulted.healthy

    def test_merge_accumulates_every_counter(self):
        a = RunHealth(shards=2, retries=1, timeouts=1, crashes=2, truncated=1,
                      corrupt=1, pool_rebuilds=1, fallback_shards=1)
        b = RunHealth(shards=3, retries=2, crashes=1)
        a.merge(b)
        assert a == RunHealth(shards=5, retries=3, timeouts=1, crashes=3,
                              truncated=1, corrupt=1, pool_rebuilds=1,
                              fallback_shards=1)


class TestRenderRunHealth:
    def test_healthy_line(self):
        assert render_run_health(RunHealth(shards=4)) == "step2 health: 4 shards, ok"
        assert render_run_health(RunHealth(shards=1)) == "step2 health: 1 shard, ok"

    def test_faulted_line_itemises_causes(self):
        line = render_run_health(
            RunHealth(shards=4, retries=2, timeouts=1, crashes=1,
                      pool_rebuilds=1, fallback_shards=1)
        )
        assert line == (
            "step2 health: 4 shards, 2 retries (1 timeout, 1 crash), "
            "1 pool rebuild, 1 local fallback [degraded]"
        )

    def test_irregular_plurals(self):
        line = render_run_health(RunHealth(shards=3, retries=2, crashes=2))
        assert "2 crashes" in line
        line = render_run_health(RunHealth(shards=3, retries=3, truncated=2,
                                           corrupt=2))
        assert "2 truncated results" in line and "2 corrupt bank views" in line

    def test_degraded_flag_only_on_fallback(self):
        assert "[degraded]" not in render_run_health(RunHealth(shards=2, retries=1))
        assert "[degraded]" in render_run_health(
            RunHealth(shards=2, fallback_shards=1)
        )


class TestRunDeadline:
    """Run-level deadline: cancellation counts once, never double."""

    def deadline_config(self, offset, **kw):
        from repro.obs import trace

        defaults = dict(shard_timeout=0.2, max_retries=2, backoff_base=0.001)
        defaults.update(kw)
        return SupervisorConfig(deadline=trace.clock() + offset, **defaults)

    def test_expired_deadline_cancels_before_any_dispatch(self):
        from repro.core.supervisor import DeadlineExceeded

        h = Harness(lambda s, a: ("ok", ok_result(s)),
                    config=self.deadline_config(-1.0))
        with pytest.raises(DeadlineExceeded) as exc_info:
            h.run()
        exc = exc_info.value
        assert exc.cancelled_shards == (0, 1)
        assert exc.health.cancelled == 2
        assert exc.health.timeouts == 0 and exc.health.crashes == 0
        assert exc.health.retries == 0
        assert not exc.health.healthy
        # cancelled before the pool was ever built
        assert h.pools == []
        assert h.local_scored == []

    def test_mid_wait_deadline_is_cancelled_not_timeout(self):
        from repro.core.supervisor import DeadlineExceeded

        h = Harness(lambda s, a: ("hang", None),
                    config=self.deadline_config(0.05))
        with pytest.raises(DeadlineExceeded) as exc_info:
            h.run()
        health = exc_info.value.health
        # The hung dispatch was interrupted by the *run* deadline: each
        # abandoned shard is a cancellation, never also a shard timeout.
        assert health.cancelled == 2
        assert health.timeouts == 0
        assert health.cancelled + health.timeouts == 2
        # the hung pool must not survive for a later request to trip over
        assert h.pools[-1].shutdowns >= 1

    def test_cancel_mid_retry_keeps_prior_counts_single(self):
        from repro.core.supervisor import DeadlineExceeded

        def behaviour(shard, attempt):
            if shard == 1:
                return ("raise", RuntimeError("boom"))
            return ("ok", ok_result(shard))

        h = Harness(behaviour,
                    config=self.deadline_config(0.01, backoff_base=0.05))
        with pytest.raises(DeadlineExceeded) as exc_info:
            h.run()
        health = exc_info.value.health
        # attempt 0's crash stays exactly one crash; the abandoned retry
        # is exactly one cancellation; nothing is counted twice and the
        # never-dispatched retry does not inflate the retry counter.
        assert health.crashes == 1
        assert health.cancelled == 1
        assert health.retries == 0
        assert health.fallback_shards == 0
        assert exc_info.value.cancelled_shards == (1,)

    def test_fallback_loop_honours_deadline(self):
        from repro.core.supervisor import DeadlineExceeded
        from repro.obs import trace

        config = self.deadline_config(0.05, max_retries=0, shard_timeout=0.2)

        def behaviour(shard, attempt):
            if shard == 1:
                # Burn through the run deadline inside the dispatch so the
                # retries are exhausted *before* it expires and the
                # in-process fallback loop is what must notice.
                while trace.clock() < config.deadline:
                    pass
            return ("raise", RuntimeError("boom"))

        h = Harness(behaviour, config=config)
        with pytest.raises(DeadlineExceeded) as exc_info:
            h.run()
        health = exc_info.value.health
        assert health.crashes == 2  # round 0 really dispatched both shards
        assert health.cancelled == 2
        assert h.local_scored == []  # no fallback ran past the deadline

    def test_submit_failures_merge_into_cancelled_at_mid_wait_deadline(self):
        from repro.core.supervisor import DeadlineExceeded

        def behaviour(shard, attempt):
            if shard == 1:
                return "broken-submit", None
            return "hang", None

        h = Harness(behaviour, config=self.deadline_config(0.05))
        with pytest.raises(DeadlineExceeded) as exc_info:
            h.run()
        exc = exc_info.value
        # Shard 1 died at submit (exactly one crash); shard 0 hung until
        # the run deadline.  Both ride back in cancelled_shards, so both
        # must land in health.cancelled exactly once — the submit-time
        # failure must not be dropped from the cancellation count.
        assert exc.cancelled_shards == (0, 1)
        assert exc.health.crashes == 1
        assert exc.health.cancelled == 2
        assert exc.health.timeouts == 0

    def test_no_deadline_behaviour_unchanged(self):
        h = Harness(lambda s, a: ("ok", ok_result(s)))
        outcomes, health = h.run()
        assert [o.shard for o in outcomes] == [0, 1]
        assert health.cancelled == 0
        assert health.healthy


class TestWarmPoolHandoff:
    """initial_pool/keep_pool: pool ownership across supervisor runs."""

    def make(self, behaviour, initial_pool, keep_pool, config=FAST):
        pools = []

        def make_pool():
            pool = FakePool(behaviour)
            pools.append(pool)
            return pool

        sup = ShardSupervisor(
            config, make_pool, lambda *a: None,
            lambda shard: ok_result(shard),
            initial_pool=initial_pool, keep_pool=keep_pool,
        )
        return sup, pools

    def test_clean_run_keeps_and_returns_the_warm_pool(self):
        warm = FakePool(lambda s, a: ("ok", ok_result(s)))
        sup, pools = self.make(lambda s, a: ("ok", ok_result(s)), warm, True)
        outcomes, health = sup.run({0: (), 1: ()}, {0: 100, 1: 100})
        assert [o.shard for o in outcomes] == [0, 1]
        assert sup.final_pool is warm
        assert warm.shutdowns == 0  # still alive for the next request
        assert pools == []  # never rebuilt
        assert health.pool_rebuilds == 0

    def test_dead_warm_pool_counts_a_rebuild(self):
        warm = FakePool(lambda s, a: ("broken-submit", None))
        sup, pools = self.make(lambda s, a: ("ok", ok_result(s)), warm, True)
        outcomes, health = sup.run({0: (), 1: ()}, {0: 100, 1: 100})
        assert [o.shard for o in outcomes] == [0, 1]
        # losing warm state is a rebuild even though it happened on round 0
        assert health.pool_rebuilds == 1
        assert sup.final_pool is pools[-1]
        assert warm.shutdowns >= 1

    def test_keep_pool_false_shuts_the_initial_pool_down(self):
        warm = FakePool(lambda s, a: ("ok", ok_result(s)))
        sup, _ = self.make(lambda s, a: ("ok", ok_result(s)), warm, False)
        sup.run({0: ()}, {0: 100})
        assert warm.shutdowns == 1
        assert sup.final_pool is None


class TestCancelledHealthPlumbing:
    def test_cancelled_breaks_healthy_and_merges(self):
        a = RunHealth(shards=2, cancelled=1)
        b = RunHealth(shards=2)
        assert not a.healthy
        merged = RunHealth()
        merged.merge(a)
        merged.merge(b)
        assert merged.cancelled == 1
        assert merged.as_dict()["cancelled"] == 1

    def test_render_mentions_cancelled_shards(self):
        line = render_run_health(RunHealth(shards=4, cancelled=2))
        assert "2 cancelled shards" in line
        line1 = render_run_health(RunHealth(shards=4, cancelled=1))
        assert "1 cancelled shard" in line1
