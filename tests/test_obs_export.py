"""Run-report tests: schema golden, span depth, retry survival, hwsim counters."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import PipelineConfig
from repro.core.executor import ShardedStep2Executor
from repro.core.faults import FaultKind, FaultPlan, FaultSpec
from repro.core.pipeline import SeedComparisonPipeline
from repro.core.supervisor import SupervisorConfig
from repro.extend.ungapped import UngappedConfig
from repro.hwsim.dma import DmaDrain, DmaStream
from repro.hwsim.fifo import SyncFifo
from repro.hwsim.kernel import Simulator
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.obs import metrics as obsmetrics
from repro.obs import trace
from repro.obs.export import (
    FLIGHT_RECORDS_SCHEMA,
    REPORT_SCHEMA,
    REQUEST_TRACE_SCHEMA,
    SERVE_METRICS_SCHEMA,
    build_run_report,
    main as export_main,
    render_span_tree,
    validate_flight_records,
    validate_report,
    validate_request_trace,
    validate_serve_metrics,
)
from repro.seqs.generate import random_protein_bank

REPO = Path(__file__).resolve().parent.parent

CFG = UngappedConfig(w=3, n=8, threshold=20)


@pytest.fixture(autouse=True)
def _obs_off():
    trace.reset()
    obsmetrics.reset()
    yield
    trace.reset()
    obsmetrics.reset()


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    b0 = random_protein_bank(rng, 25, mean_length=140, name_prefix="q")
    b1 = random_protein_bank(rng, 35, mean_length=140, name_prefix="s")
    return b0, b1, TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))


def span_depth(spans: list[dict]) -> int:
    """Levels in the deepest root-to-leaf chain of an exported span forest."""
    parents = {s["span_id"]: s["parent_id"] for s in spans}

    def depth(sid):
        n = 0
        while sid is not None:
            n += 1
            sid = parents.get(sid)
        return n

    return max((depth(sid) for sid in parents), default=0)


class TestSchema:
    def test_checked_in_schema_matches_embedded(self):
        on_disk = json.loads(
            (REPO / "schemas" / "run_report.schema.json").read_text()
        )
        assert on_disk == REPORT_SCHEMA

    def test_empty_report_is_valid(self):
        report = build_run_report()
        assert validate_report(report) == []
        assert report["version"] == 1
        assert report["spans"] == [] and report["metrics"] == {"metrics": []}

    def test_validator_flags_shape_violations(self):
        report = build_run_report()
        report["version"] = True  # bool is not an integer here
        errors = validate_report(report)
        assert any("$.version" in e for e in errors)

        report = build_run_report()
        del report["spans"]
        assert any("spans" in e for e in validate_report(report))

        report = build_run_report()
        report["metrics"]["metrics"] = [{"name": 1, "kind": "counter"}]
        errors = validate_report(report)
        assert any("name" in e for e in errors)
        assert any("labels" in e for e in errors)

    def test_export_cli_validates(self, tmp_path, capsys):
        tracer = trace.Tracer()
        tracer.record("pipeline", 0.5)
        path = tmp_path / "report.json"
        path.write_text(json.dumps(build_run_report(tracer=tracer)))
        schema = str(REPO / "schemas" / "run_report.schema.json")
        assert export_main([str(path), "--schema", schema]) == 0
        assert "ok: version 1 report, 1 spans" in capsys.readouterr().out
        path.write_text(json.dumps({"version": 1}))
        assert export_main([str(path)]) == 1


class TestServeMetricsSchema:
    def scrape(self, **families):
        merged = dict(SERVE_METRICS_SCHEMA["families"])
        merged.update(families)
        return "\n".join(
            f"# TYPE {name} {kind}" for name, kind in merged.items() if kind
        )

    def test_checked_in_schema_matches_embedded(self):
        on_disk = json.loads(
            (REPO / "schemas" / "serve_metrics.schema.json").read_text()
        )
        assert on_disk == SERVE_METRICS_SCHEMA

    def test_required_is_a_subset_of_families(self):
        assert set(SERVE_METRICS_SCHEMA["required"]) <= set(
            SERVE_METRICS_SCHEMA["families"]
        )
        assert all(
            name.startswith(SERVE_METRICS_SCHEMA["prefix"])
            for name in SERVE_METRICS_SCHEMA["families"]
        )

    def test_full_scrape_is_valid(self):
        assert validate_serve_metrics(self.scrape()) == []

    def test_non_serve_families_are_ignored(self):
        text = self.scrape() + "\n# TYPE step2_pairs_total counter"
        assert validate_serve_metrics(text) == []

    def test_missing_required_family_is_flagged(self):
        text = self.scrape(serve_shed_total=None)  # dropped
        errors = validate_serve_metrics(text)
        assert any("serve_shed_total" in e and "missing" in e for e in errors)

    def test_kind_mismatch_is_flagged(self):
        text = self.scrape(serve_queue_depth="counter")
        errors = validate_serve_metrics(text)
        assert any("serve_queue_depth" in e and "gauge" in e for e in errors)

    def test_undeclared_serve_family_is_drift(self):
        text = self.scrape(serve_novel_total="counter")
        errors = validate_serve_metrics(text)
        assert any("serve_novel_total" in e and "schema" in e for e in errors)

    def test_duplicate_and_malformed_lines_flagged(self):
        text = self.scrape() + "\n# TYPE serve_shed_total counter\n# TYPE broken"
        errors = validate_serve_metrics(text)
        assert any("declared twice" in e for e in errors)
        assert any("malformed" in e for e in errors)

    def test_export_cli_serve_metrics_kind(self, tmp_path, capsys):
        path = tmp_path / "scrape.txt"
        path.write_text(self.scrape(), encoding="ascii")
        schema = str(REPO / "schemas" / "serve_metrics.schema.json")
        assert export_main(
            [str(path), "--kind", "serve-metrics", "--schema", schema]
        ) == 0
        assert "ok: serve metrics scrape" in capsys.readouterr().out
        path.write_text(self.scrape(serve_shed_total=None), encoding="ascii")
        assert export_main([str(path), "--kind", "serve-metrics"]) == 1
        assert "invalid:" in capsys.readouterr().err


def _trace_doc(**over):
    doc = {
        "version": 1,
        "request_id": "abc123",
        "trace_id": "def456",
        "request_index": 0,
        "status": "ok",
        "code": 200,
        "duration_seconds": 0.25,
        "spans": [
            {
                "name": "serve.request",
                "span_id": 1,
                "parent_id": None,
                "start": 0.0,
                "duration": 0.25,
                "attributes": {},
                "events": [],
            }
        ],
    }
    doc.update(over)
    return doc


def _flight_doc(**over):
    doc = {
        "version": 1,
        "capacity": 8,
        "recorded": 1,
        "dropped": 0,
        "records": [
            {
                "request_id": "abc123",
                "trace_id": "def456",
                "request_index": 0,
                "status": "ok",
                "code": 200,
                "breakdown": {"queue": 0.01, "total": 0.25},
                "retry_events": 0,
                "fallback_events": 0,
                "breaker_events": [],
                "shed_reason": None,
                "degraded": False,
            }
        ],
    }
    doc.update(over)
    return doc


class TestRequestTraceSchema:
    def test_checked_in_schemas_match_embedded(self):
        assert json.loads(
            (REPO / "schemas" / "request_trace.schema.json").read_text()
        ) == REQUEST_TRACE_SCHEMA
        assert json.loads(
            (REPO / "schemas" / "flight_record.schema.json").read_text()
        ) == FLIGHT_RECORDS_SCHEMA

    def test_valid_documents_pass(self):
        assert validate_request_trace(_trace_doc()) == []
        assert validate_flight_records(_flight_doc()) == []

    def test_trace_shape_violations_flagged(self):
        assert any(
            "status" in e
            for e in validate_request_trace(_trace_doc(status="weird"))
        )
        doc = _trace_doc()
        del doc["spans"]
        assert any("spans" in e for e in validate_request_trace(doc))
        # Draining rejections have no admission index: null must be legal.
        assert validate_request_trace(_trace_doc(request_index=None)) == []

    def test_flight_shape_violations_flagged(self):
        doc = _flight_doc()
        doc["records"][0]["breakdown"]["total"] = -1.0
        assert any("total" in e for e in validate_flight_records(doc))
        doc = _flight_doc()
        del doc["records"][0]["trace_id"]
        assert any("trace_id" in e for e in validate_flight_records(doc))

    def test_export_cli_kinds(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(_trace_doc()))
        schema = str(REPO / "schemas" / "request_trace.schema.json")
        assert export_main(
            [str(path), "--kind", "request-trace", "--schema", schema]
        ) == 0
        assert "1 spans" in capsys.readouterr().out
        path.write_text(json.dumps(_flight_doc()))
        schema = str(REPO / "schemas" / "flight_record.schema.json")
        assert export_main(
            [str(path), "--kind", "flight-records", "--schema", schema]
        ) == 0
        assert "flight records" in capsys.readouterr().out
        path.write_text(json.dumps(_flight_doc(records=[{}])))
        assert export_main([str(path), "--kind", "flight-records"]) == 1


class TestPipelineReport:
    def test_two_worker_run_yields_deep_valid_report(self, workload):
        b0, b1, _ = workload
        pipe = SeedComparisonPipeline(
            PipelineConfig(
                seed_model=ContiguousSeedModel(3), workers=2,
                min_pairs_per_shard=0,
            )
        )
        tracer = trace.Tracer(meta={"command": "test"})
        registry = obsmetrics.MetricsRegistry()
        with trace.activate(tracer), obsmetrics.activate(registry):
            pipe.compare_banks(b0, b1)
        report = build_run_report(
            tracer=tracer,
            registry=registry,
            profile=pipe.profile,
            health=pipe.profile.run_health,
            detsan=pipe.last_detsan,
        )
        assert validate_report(report) == []
        names = {s["name"] for s in report["spans"]}
        assert {"pipeline", "step1.index", "step2.ungapped",
                "step2.shard", "step2.worker", "step3.gapped"} <= names
        # pipeline -> step2.ungapped -> step2.shard -> step2.worker
        assert span_depth(report["spans"]) >= 4
        series = {m["name"] for m in report["metrics"]["metrics"]}
        assert "step2_pairs_total" in series and "step2_shard_pairs" in series
        pairs = next(
            m for m in report["metrics"]["metrics"]
            if m["name"] == "step2_pairs_total"
        )
        assert pairs["value"] > 0
        assert report["profile"] is not None
        assert report["run_health"] is not None

    def test_spans_survive_a_shard_retry(self, workload):
        _, _, idx = workload
        plan = FaultPlan((FaultSpec(FaultKind.CRASH, shard=0, attempt=0),), seed=3)
        ex = ShardedStep2Executor(
            CFG, workers=2,
            supervisor=SupervisorConfig(shard_timeout=5.0, max_retries=2),
            fault_plan=plan, min_pairs_per_shard=0,
        )
        tracer = trace.Tracer()
        with trace.activate(tracer), obsmetrics.activate(
            obsmetrics.MetricsRegistry()
        ):
            with trace.span("step2.run"):
                ex.run(idx)
        spans = tracer.export()
        shard0 = next(
            s for s in spans
            if s["name"] == "step2.shard" and s["attributes"]["shard"] == 0
        )
        assert shard0["attributes"]["attempts"] == 2
        assert shard0["attributes"]["via"] == "pool"
        assert shard0["attributes"]["retry_wall_seconds"] > 0
        # The retried shard's worker spans still come home and reparent.
        shard_ids = {s["span_id"] for s in spans if s["name"] == "step2.shard"}
        workers = [s for s in spans if s["name"] == "step2.worker"]
        assert len(workers) == 2
        assert all(s["parent_id"] in shard_ids for s in workers)
        assert any(s["parent_id"] == shard0["span_id"] for s in workers)
        # The supervisor's retry lands as an event on the enclosing span.
        root = next(s for s in spans if s["name"] == "step2.run")
        retries = [e for e in root["events"] if e["name"] == "step2.retry"]
        assert any(e["shard"] == 0 for e in retries)


class TestHwsimCounters:
    @staticmethod
    def run_fixed_workload() -> obsmetrics.MetricsRegistry:
        """64 words through a depth-4 FIFO, producer 2x faster than drain."""
        registry = obsmetrics.MetricsRegistry()
        data = np.arange(64, dtype=np.int64)
        fifo = SyncFifo(4, name="results")
        stream = DmaStream(data, fifo, words_per_cycle=2, name="in")
        drain = DmaDrain(fifo, words_per_cycle=1, name="out")
        sim = Simulator()
        sim.add(stream)
        sim.add(drain)
        with obsmetrics.activate(registry):
            sim.run_until_idle()
            stream.publish_metrics()
            fifo.publish_metrics()
        assert len(drain.received) == 64
        return registry

    def test_counters_nonzero_and_match_components(self):
        registry = self.run_fixed_workload()
        assert registry.counter("hwsim_dma_words_total", stream="in").value == 64
        assert registry.counter("hwsim_fifo_pushed_total", fifo="results").value == 64
        # Steady state: +2 pushes, -1 pop per committed cycle caps the
        # committed occupancy at 3 before backpressure bites.
        assert registry.gauge("hwsim_fifo_high_water", fifo="results").value == 3
        # Producer outruns the drain, so backpressure stalls must register.
        assert registry.counter(
            "hwsim_dma_stall_cycles_total", stream="in"
        ).value > 0

    def test_fixed_workload_is_deterministic(self):
        a = self.run_fixed_workload().to_dict()
        b = self.run_fixed_workload().to_dict()
        assert a == b


class TestRenderSpanTree:
    SPANS = [
        {"name": "pipeline", "span_id": 1, "parent_id": None, "start": 0.0,
         "duration": 0.004, "attributes": {}, "events": []},
        {"name": "step2", "span_id": 2, "parent_id": 1, "start": 0.001,
         "duration": 0.003, "attributes": {"workers": 2},
         "events": [{"name": "retry", "offset": 0.001}]},
        {"name": "orphan", "span_id": 9, "parent_id": 77, "start": 0.0,
         "duration": None, "attributes": {}, "events": []},
    ]

    def test_tree_indents_children_and_keeps_orphans(self):
        lines = render_span_tree(self.SPANS).splitlines()
        assert lines[0].startswith("pipeline") and "4.000 ms" in lines[0]
        assert lines[1].startswith("  step2")
        assert "[workers=2]" in lines[1] and "(1 events)" in lines[1]
        assert lines[2].startswith("orphan") and "open" in lines[2]


class TestCliFlags:
    @pytest.fixture(scope="class")
    def workload_files(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("obs_cli")
        assert main([
            "synth", str(d / "w"), "--proteins", "4", "--genome-nt", "24000",
            "--families", "2", "--seed", "11",
        ]) == 0
        return str(d / "w_proteins.fasta"), str(d / "w_genome.fasta")

    def test_compare_writes_report_and_metrics(
        self, workload_files, tmp_path, capsys
    ):
        proteins, genome = workload_files
        trace_out = tmp_path / "report.json"
        metrics_out = tmp_path / "metrics.prom"
        assert main([
            "compare", proteins, genome, "--workers", "2", "--max-hits", "2",
            "--trace-out", str(trace_out), "--metrics-out", str(metrics_out),
            "--obs-summary",
        ]) == 0
        out = capsys.readouterr().out
        assert "# wrote run report:" in out and "# wrote metrics:" in out
        assert "pipeline" in out  # --obs-summary span tree
        report = json.loads(trace_out.read_text())
        assert validate_report(report) == []
        assert report["meta"]["command"] == "compare"
        assert span_depth(report["spans"]) >= 3
        assert report["profile"] is not None and report["run_health"] is not None
        assert metrics_out.read_text().startswith("# TYPE")

    def test_flags_off_writes_nothing(self, workload_files, tmp_path, capsys):
        proteins, genome = workload_files
        assert main(["compare", proteins, genome, "--max-hits", "1"]) == 0
        assert "# wrote run report" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []
