"""RC2xx kernel-rule tests: committed fixtures, real tree, proven bounds."""

import pathlib

import pytest

from repro.analysis.checker import check_paths
from repro.analysis.dtypes import dtype_bounds
from repro.analysis.flows import ProjectAnalyses
from repro.analysis.kernels import accumulator_peak, collect_backends

FIXTURES = pathlib.Path(__file__).resolve().parent / "analysis_fixtures"
REPO = pathlib.Path(__file__).resolve().parents[1]

RC2XX = ["RC200", "RC201", "RC202", "RC203", "RC204"]


def codes_for(tree):
    result = check_paths([FIXTURES / tree], select=RC2XX)
    assert not result.parse_errors
    return sorted({v.rule for v in result.violations})


def project_for(paths):
    from repro.analysis.checker import collect_files, parse_file
    from repro.analysis.graph import ProjectGraph

    contexts = [
        ctx
        for ctx in map(parse_file, collect_files(paths))
        if ctx.in_package
    ]
    return ProjectAnalyses(ProjectGraph.from_contexts(contexts))


class TestFixtures:
    """Each rule has a tree it must flag and a twin it must pass."""

    @pytest.mark.parametrize("code", RC2XX)
    def test_flag_tree_fires(self, code):
        assert codes_for(f"{code.lower()}_flags") == [code]

    @pytest.mark.parametrize("code", RC2XX)
    def test_clean_tree_passes(self, code):
        assert codes_for(f"{code.lower()}_clean") == []

    def test_rc200_reports_both_failure_modes(self):
        result = check_paths([FIXTURES / "rc200_flags"], select=["RC200"])
        messages = [v.message for v in result.violations]
        assert any("exceeds its range" in m for m in messages)
        assert any("registers no probe" in m for m in messages)

    def test_rc204_reports_both_contract_breaches(self):
        result = check_paths([FIXTURES / "rc204_flags"], select=["RC204"])
        messages = [v.message for v in result.violations]
        assert any("declaration and body must agree" in m for m in messages)
        assert any("max_batch_pairs" in m for m in messages)


class TestProvenBounds:
    """The RC200 acceptance claim: int16 is proven safe on the real tree."""

    def test_default_window_peak_is_448(self):
        project = project_for([REPO / "src"])
        assert accumulator_peak(project.graph) == 448

    def test_int16_backend_is_proven_safe(self):
        project = project_for([REPO / "src"])
        peak = accumulator_peak(project.graph)
        decls = {d.name: d for d in collect_backends(project.graph)}
        assert "int16" in decls
        lo, hi = dtype_bounds(decls["int16"].score_dtype)
        assert lo <= -peak and peak <= hi
        # ...and the probe is registered, so non-default windows are refused
        # at config time rather than proven here.
        assert decls["int16"].has_probe

    def test_int8_would_be_refuted(self):
        project = project_for([REPO / "src"])
        peak = accumulator_peak(project.graph)
        lo, hi = dtype_bounds("int8")
        assert peak > hi

    def test_registry_backends_are_reachable(self):
        # Satellite check: @register_backend factories and kernel methods
        # must be visible to the call graph (the qualified-name fix).
        project = project_for([REPO / "src"])
        decls = {d.name for d in collect_backends(project.graph)}
        assert {"fused", "int16", "batched", "per_key", "scalar"} <= decls
        score_methods = {
            methods.get("score")
            for methods in project.graph.backend_factories.values()
        }
        assert all(q in project.graph.functions for q in score_methods if q)


class TestRealTree:
    def test_src_is_clean_under_rc2xx(self):
        # The acceptance gate: RC201/RC203 report zero findings on the
        # backends after the scratch-reuse fixes, and RC200/RC202/RC204
        # hold tree-wide (reference-kernel exemptions ride as inline noqa).
        result = check_paths([REPO / "src"], select=RC2XX)
        assert result.violations == []


class TestSeededBug:
    """A planted per-batch allocation must be caught statically."""

    def test_alloc_in_score_loop_is_flagged(self, tmp_path):
        bugged = tmp_path / "repro" / "extend" / "backends" / "bad.py"
        bugged.parent.mkdir(parents=True)
        bugged.write_text(
            "import numpy as np\n"
            "from .registry import register_backend\n\n\n"
            "class BadKernel:\n"
            "    def __init__(self, config):\n"
            "        self._config = config\n\n"
            "    def prepare(self, buf0, buf1):\n"
            "        self._buf0 = buf0\n\n"
            "    def score(self, anchors0, anchors1):\n"
            "        acc = None\n"
            "        for t in range(4):\n"
            "            tmp = np.zeros(8, dtype=np.int32)\n"
            "            acc = tmp\n"
            "        return acc\n\n\n"
            "@register_backend('bad', score_dtype='int32')\n"
            "def make_bad(config):\n"
            "    return BadKernel(config)\n"
        )
        result = check_paths([tmp_path], select=["RC203"])
        assert [v.rule for v in result.violations] == ["RC203"]
        assert "score()" in result.violations[0].message


def test_rc002_covers_backend_constructors(tmp_path):
    # Satellite regression: extend/backends/ is hot-path scope, and
    # np.ones joined the dtype-required constructor set.
    bugged = tmp_path / "repro" / "extend" / "backends" / "x.py"
    bugged.parent.mkdir(parents=True)
    bugged.write_text(
        "import numpy as np\n\n\n"
        "def make(n: int) -> np.ndarray:\n"
        "    return np.ones(n)\n"
    )
    result = check_paths([tmp_path], select=["RC002"])
    assert [v.rule for v in result.violations] == ["RC002"]


def test_rc005_covers_backend_signatures(tmp_path):
    bugged = tmp_path / "repro" / "extend" / "backends" / "x.py"
    bugged.parent.mkdir(parents=True)
    bugged.write_text("def make(config):\n    return None\n")
    result = check_paths([tmp_path], select=["RC005"])
    assert [v.rule for v in result.violations] == ["RC005"]
