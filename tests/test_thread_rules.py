"""RC3xx thread/lock project-rule tests: fixtures, real tree, properties."""

import ast
import pathlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.checker import check_paths, collect_files, parse_file
from repro.analysis.locks import find_lock_cycle

FIXTURES = pathlib.Path(__file__).resolve().parent / "analysis_fixtures"
REPO = pathlib.Path(__file__).resolve().parents[1]

RC3XX = ["RC300", "RC301", "RC302", "RC303", "RC304"]


def codes_for(tree):
    result = check_paths([FIXTURES / tree], select=RC3XX)
    assert not result.parse_errors
    return sorted({v.rule for v in result.violations})


class TestFixtures:
    """Each rule has a tree it must flag and a twin it must pass."""

    @pytest.mark.parametrize("code", RC3XX)
    def test_flag_tree_fires(self, code):
        assert codes_for(f"{code.lower()}_flags") == [code]

    @pytest.mark.parametrize("code", RC3XX)
    def test_clean_tree_passes(self, code):
        assert codes_for(f"{code.lower()}_clean") == []

    def test_rc300_catches_the_drain_race_shape(self):
        # The distilled PR-8 bug: the dispatcher thread writes `_busy`
        # bare while drain() samples it under a lock the writer ignores.
        result = check_paths([FIXTURES / "rc300_flags"], select=["RC300"])
        [v] = result.violations
        assert "_busy" in v.message
        assert "thread:_dispatch_loop" in v.message

    def test_rc301_names_the_cycle(self):
        result = check_paths([FIXTURES / "rc301_flags"], select=["RC301"])
        [v] = result.violations
        assert "_accounts" in v.message and "_journal" in v.message


class TestRealTree:
    def test_src_is_clean_under_rc3xx_modulo_baseline(self):
        # The acceptance gate for the thread/lock family: the remaining
        # RC3xx debt is signal-context state that cannot take locks —
        # the executor's `_LIVE_SEGMENTS` cleanup registry (mutated from
        # signal/atexit context; its dict ops are single-bytecode atomic
        # under the GIL) and the sampling profiler's SIGALRM handler
        # (lock-free by design: the `_flight` lock serialises window
        # owners and samples are read only while disarmed — DESIGN §10).
        from repro.analysis.baseline import load_baseline

        baseline = load_baseline(REPO / "repro-baseline.json")
        result = check_paths([REPO / "src"], select=RC3XX, baseline=baseline)
        assert result.violations == []
        assert result.baseline_suppressed == 16
        assert [k for k in result.baseline_stale if k[0] in RC3XX] == []


class TestLockNameAgreement:
    """Factory-seam string literals must be names the static model knows.

    ``make_lock("repro.serve...")`` literals are the join key between the
    runtime manifest and :class:`LockModel` — a typo in one would silently
    break the ``--verify-locks`` cross-check, so the agreement is a test.
    """

    FACTORIES = {"make_lock", "make_rlock", "make_condition"}

    def _factory_literals(self):
        literals = []
        for path in collect_files([REPO / "src" / "repro"]):
            if path.name == "locksan.py":
                continue  # the factory definitions themselves
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else None
                )
                if name in self.FACTORIES and node.args:
                    arg = node.args[0]
                    assert isinstance(arg, ast.Constant) and isinstance(
                        arg.value, str
                    ), f"{path}: factory call without a literal name"
                    literals.append(arg.value)
        return literals

    def test_every_factory_literal_is_a_model_lock(self):
        from repro.analysis.graph import ProjectGraph
        from repro.analysis.locks import LockAnalysis

        contexts = [
            parse_file(p) for p in collect_files([REPO / "src" / "repro"])
        ]
        analysis = LockAnalysis(
            ProjectGraph.from_contexts(c for c in contexts if c.in_package)
        )
        literals = self._factory_literals()
        assert literals, "the factory seam is not wired anywhere"
        unknown = sorted(set(literals) - set(analysis.model.locks))
        assert unknown == [], f"factory names the model never discovered: {unknown}"


def _named(edges):
    return [(f"L{a}", f"L{b}") for a, b in edges]


@st.composite
def dag_edges(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda e: e[0] < e[1]),
            max_size=30,
        )
    )
    return _named(pairs)


@st.composite
def cycle_plus_noise(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    cycle = [(f"C{i}", f"C{(i + 1) % n}") for i in range(n)]
    noise = draw(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
                lambda e: e[0] < e[1]
            ),
            max_size=20,
        )
    )
    edges = cycle + [(f"N{a}", f"N{b}") for a, b in noise]
    return draw(st.permutations(edges))


class TestCycleDetectorProperties:
    @given(dag_edges())
    def test_random_dags_are_never_flagged(self, edges):
        assert find_lock_cycle(edges) is None

    @given(cycle_plus_noise())
    def test_planted_cycles_are_always_found(self, edges):
        cycle = find_lock_cycle(edges)
        assert cycle is not None
        # The witness must be a genuine closed walk over the given edges.
        assert cycle[0] == cycle[-1] and len(cycle) >= 3
        edge_set = set(edges)
        for a, b in zip(cycle, cycle[1:]):
            assert (a, b) in edge_set

    def test_deterministic_witness(self):
        edges = [("B", "A"), ("A", "B"), ("C", "A")]
        assert find_lock_cycle(edges) == find_lock_cycle(list(reversed(edges)))
