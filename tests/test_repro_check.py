"""repro-check linter tests: each RC rule, noqa, select, and CLI exit codes."""

import pytest

from repro.analysis.checker import check_paths
from repro.analysis.cli import main
from repro.analysis.rules import REGISTRY, package_relative


def write(tmp_path, rel, source):
    """Write *source* at *rel* under tmp_path and return the file path."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def codes_in(tmp_path, rel, source):
    """Rule codes fired on one snippet placed at *rel*."""
    result = check_paths([write(tmp_path, rel, source)])
    return [v.rule for v in result.violations]


class TestPackageRelative:
    def test_inside_package(self, tmp_path):
        p = tmp_path / "src" / "repro" / "core" / "executor.py"
        assert package_relative(p) == "core/executor.py"

    def test_outside_package(self, tmp_path):
        assert package_relative(tmp_path / "tests" / "test_x.py") is None


class TestRC001UnseededRandom:
    def test_stdlib_random_import_fires(self, tmp_path):
        assert codes_in(tmp_path, "repro/seqs/gen.py", "import random\n") == ["RC001"]

    def test_from_random_import_fires(self, tmp_path):
        src = "from random import randint\n"
        assert codes_in(tmp_path, "repro/seqs/gen.py", src) == ["RC001"]

    def test_legacy_np_random_fires(self, tmp_path):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert codes_in(tmp_path, "repro/seqs/gen.py", src) == ["RC001"]

    def test_unseeded_default_rng_fires(self, tmp_path):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes_in(tmp_path, "repro/seqs/gen.py", src) == ["RC001"]

    def test_seeded_default_rng_clean(self, tmp_path):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert codes_in(tmp_path, "repro/seqs/gen.py", src) == []

    def test_outside_package_exempt(self, tmp_path):
        assert codes_in(tmp_path, "scripts/demo.py", "import random\n") == []


class TestRC002ExplicitDtype:
    def test_hot_path_without_dtype_fires(self, tmp_path):
        src = "import numpy as np\nx = np.zeros(8)\n"
        assert codes_in(tmp_path, "repro/extend/k.py", src) == ["RC002"]

    def test_executor_is_hot_path(self, tmp_path):
        src = "import numpy as np\nx = np.arange(8)\n"
        assert codes_in(tmp_path, "repro/core/executor.py", src) == ["RC002"]

    def test_hot_path_with_dtype_clean(self, tmp_path):
        src = "import numpy as np\nx = np.zeros(8, dtype=np.int64)\n"
        assert codes_in(tmp_path, "repro/extend/k.py", src) == []

    def test_cold_path_exempt(self, tmp_path):
        src = "import numpy as np\nx = np.zeros(8)\n"
        assert codes_in(tmp_path, "repro/seqs/gen.py", src) == []

    def test_keyword_splat_may_carry_dtype(self, tmp_path):
        # dtype forwarded through **kwargs must not be flagged: the call
        # site cannot prove the dtype is absent.
        src = (
            "import numpy as np\n"
            "kw = {'dtype': np.int64}\n"
            "x = np.zeros(8, **kw)\n"
        )
        assert codes_in(tmp_path, "repro/extend/k.py", src) == []


class TestRC003MutableDefault:
    def test_list_literal_fires(self, tmp_path):
        assert codes_in(tmp_path, "anywhere.py", "def f(x=[]):\n    pass\n") == ["RC003"]

    def test_dict_call_fires(self, tmp_path):
        src = "def f(*, x=dict()):\n    pass\n"
        assert codes_in(tmp_path, "anywhere.py", src) == ["RC003"]

    def test_none_default_clean(self, tmp_path):
        assert codes_in(tmp_path, "anywhere.py", "def f(x=None):\n    pass\n") == []


class TestRC004WallClock:
    def test_time_time_call_fires(self, tmp_path):
        src = "import time\nt = time.time()\n"
        assert codes_in(tmp_path, "repro/core/profile.py", src) == ["RC004"]

    def test_from_time_import_time_fires(self, tmp_path):
        src = "from time import time\n"
        assert codes_in(tmp_path, "bench.py", src) == ["RC004"]

    # RC004-clean paths below avoid core/profile.py: it sits in RC105's
    # instrumented scope, where a direct perf_counter() call now fires.
    def test_perf_counter_clean(self, tmp_path):
        src = "import time\nt = time.perf_counter()\n"
        assert codes_in(tmp_path, "repro/core/results.py", src) == []

    def test_monotonic_clean(self, tmp_path):
        # time.monotonic() is as deadline-safe as perf_counter().
        src = "import time\nt = time.monotonic()\n"
        assert codes_in(tmp_path, "repro/core/results.py", src) == []

    def test_perf_counter_in_instrumented_module_fires_rc105(self, tmp_path):
        src = "import time\nt = time.perf_counter()\n"
        assert codes_in(tmp_path, "repro/core/profile.py", src) == ["RC105"]


class TestRC106DirectPairedKernel:
    SRC = (
        "def f(buf0: object, a0: object, buf1: object, a1: object) -> None:\n"
        "    ungapped_scores_paired(buf0, a0, buf1, a1, 8, 20)\n"
    )

    def test_direct_call_in_package_fires(self, tmp_path):
        assert codes_in(tmp_path, "repro/core/hot.py", self.SRC) == ["RC106"]

    def test_attribute_call_fires(self, tmp_path):
        src = (
            "def f(u: object, buf0: object, a0: object, buf1: object,\n"
            "      a1: object) -> None:\n"
            "    u.ungapped_scores_paired(buf0, a0, buf1, a1, 8, 20)\n"
        )
        assert codes_in(tmp_path, "repro/core/hot.py", src) == ["RC106"]

    def test_defining_module_and_backends_exempt(self, tmp_path):
        assert codes_in(tmp_path, "repro/extend/ungapped.py", self.SRC) == []
        assert (
            codes_in(tmp_path, "repro/extend/backends/batched.py", self.SRC)
            == []
        )

    def test_tests_and_benchmarks_exempt(self, tmp_path):
        assert codes_in(tmp_path, "tests/test_hot.py", self.SRC) == []


class TestRC005PublicAnnotations:
    def test_unannotated_public_function_fires(self, tmp_path):
        src = "def score(a, b):\n    return a\n"
        assert codes_in(tmp_path, "repro/core/x.py", src) == ["RC005"]

    def test_missing_return_fires(self, tmp_path):
        src = "def score(a: int, b: int):\n    return a\n"
        assert codes_in(tmp_path, "repro/extend/x.py", src) == ["RC005"]

    def test_fully_annotated_clean(self, tmp_path):
        src = "def score(a: int, b: int) -> int:\n    return a\n"
        assert codes_in(tmp_path, "repro/index/x.py", src) == []

    def test_self_exempt_in_methods(self, tmp_path):
        src = "class C:\n    def __init__(self, x: int) -> None:\n        self.x = x\n"
        assert codes_in(tmp_path, "repro/core/x.py", src) == []

    def test_private_exempt(self, tmp_path):
        src = "def _helper(a):\n    return a\n"
        assert codes_in(tmp_path, "repro/core/x.py", src) == []

    def test_outside_scope_exempt(self, tmp_path):
        src = "def score(a, b):\n    return a\n"
        assert codes_in(tmp_path, "repro/seqs/x.py", src) == []


class TestSuppressionAndSelect:
    def test_noqa_with_code_suppresses(self, tmp_path):
        src = "import numpy as np\nx = np.zeros(8)  # noqa: RC002\n"
        assert codes_in(tmp_path, "repro/extend/k.py", src) == []

    def test_bare_noqa_does_not_suppress(self, tmp_path):
        src = "import numpy as np\nx = np.zeros(8)  # noqa\n"
        assert codes_in(tmp_path, "repro/extend/k.py", src) == ["RC002"]

    def test_noqa_only_silences_listed_code(self, tmp_path):
        src = "import numpy as np\nx = np.zeros(8)  # noqa: RC001\n"
        assert codes_in(tmp_path, "repro/extend/k.py", src) == ["RC002"]

    def test_select_restricts_rules(self, tmp_path):
        path = write(
            tmp_path,
            "repro/extend/k.py",
            "import numpy as np\n\n\ndef f(x: list = []) -> np.ndarray:\n"
            "    return np.zeros(8)\n",
        )
        all_codes = [v.rule for v in check_paths([path]).violations]
        assert sorted(all_codes) == ["RC002", "RC003"]
        only = [v.rule for v in check_paths([path], select=["RC003"]).violations]
        assert only == ["RC003"]

    def test_parse_error_is_a_finding(self, tmp_path):
        path = write(tmp_path, "broken.py", "def broken(:\n")
        result = check_paths([path])
        assert not result.ok
        assert result.parse_errors and not result.violations

    def test_file_level_noqa_silences_everything(self, tmp_path):
        src = (
            "# repro-check: noqa\n"
            "import numpy as np\n"
            "x = np.zeros(8)\n"
            "def _f(y=[]):\n    pass\n"
        )
        assert codes_in(tmp_path, "repro/extend/k.py", src) == []

    def test_file_level_noqa_with_codes_is_selective(self, tmp_path):
        src = (
            "# repro-check: noqa: RC003\n"
            "import numpy as np\n"
            "x = np.zeros(8)\n"
            "def _f(y=[]):\n    pass\n"
        )
        assert codes_in(tmp_path, "repro/extend/k.py", src) == ["RC002"]


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "clean/ok.py", "def f(x: int) -> int:\n    return x\n")
        assert main([str(tmp_path / "clean")]) == 0
        out = capsys.readouterr().out
        assert "1 files, 0 violations" in out

    def test_violating_tree_exits_one(self, tmp_path, capsys):
        write(tmp_path, "bad/repro/extend/k.py", "import numpy as np\nx = np.empty(3)\n")
        assert main([str(tmp_path / "bad")]) == 1
        out = capsys.readouterr().out
        assert "RC002" in out and "1 violation" in out

    def test_no_paths_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2

    def test_unknown_select_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--select", "RC999", str(tmp_path)])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in REGISTRY:
            assert code in out

    def test_repo_source_tree_is_clean(self):
        # The gate the CI job runs; the repo must dogfood its own linter.
        # The committed baseline absorbs the known architectural findings
        # (the executor's per-worker `_WORKER` state) — anything new fails.
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[1]
        baseline = repo / "repro-baseline.json"
        assert main(["-q", "--baseline", str(baseline), str(repo / "src")]) == 0
