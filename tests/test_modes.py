"""BLAST-family mode facade tests."""

import numpy as np
import pytest

from repro.core.modes import BlastFamilySearch, SearchMode, translate_queries
from repro.seqs.alphabet import DNA
from repro.seqs.generate import (
    make_family,
    plant_homologs,
    random_genome,
    random_protein_bank,
    reverse_translate,
)
from repro.seqs.sequence import Sequence, SequenceBank


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(314)
    families = [
        make_family(rng, i, 160, 1, identity_range=(0.7, 0.85)) for i in range(3)
    ]
    genome = random_genome(rng, 60_000, name="g")
    genome, truth = plant_homologs(rng, genome, families)
    queries = SequenceBank(
        [Sequence(f"fam{f.family_id}", f.ancestor) for f in families]
    )
    return rng, queries, genome, truth, families


class TestModeProperties:
    def test_translation_flags(self):
        assert not SearchMode.BLASTP.query_is_dna
        assert not SearchMode.BLASTP.subject_is_dna
        assert SearchMode.BLASTX.query_is_dna
        assert not SearchMode.BLASTX.subject_is_dna
        assert not SearchMode.TBLASTN.query_is_dna
        assert SearchMode.TBLASTN.subject_is_dna
        assert SearchMode.TBLASTX.query_is_dna
        assert SearchMode.TBLASTX.subject_is_dna


class TestTranslateQueries:
    def test_six_frames_per_query(self):
        rng = np.random.default_rng(0)
        dna = Sequence("d", reverse_translate(rng, rng.integers(0, 20, 50).astype(np.uint8)), DNA)
        bank = translate_queries(SequenceBank([dna, dna], alphabet=DNA, pad=8))
        assert len(bank) == 12
        assert any("frame+1" in n for n in bank.names)

    def test_protein_query_rejected(self):
        with pytest.raises(ValueError, match="not DNA"):
            translate_queries(Sequence.from_text("p", "MKV"))


class TestModes:
    def test_tblastn_finds_plants(self, workload):
        _, queries, genome, truth, _ = workload
        report = BlastFamilySearch().tblastn(queries, genome)
        assert {a.seq0_name for a in report} == {"fam0", "fam1", "fam2"}

    def test_blastp_self_hits(self, workload):
        _, queries, _, _, _ = workload
        report = BlastFamilySearch().blastp(queries, queries)
        # Every query aligns to itself with a full-length perfect hit.
        for i, name in enumerate(("fam0", "fam1", "fam2")):
            self_hits = [
                a for a in report if a.seq0_name == name and a.seq1_id == i
            ]
            assert self_hits, name
            assert max(a.span0 for a in self_hits) == 160

    def test_blastx_locates_family(self, workload):
        rng, queries, genome, truth, families = workload
        t = truth[0]
        frag = Sequence(
            "frag",
            genome.codes[max(0, t.genome_start - 60) : t.genome_end + 60],
            DNA,
        )
        report = BlastFamilySearch().blastx(frag, queries)
        assert len(report) >= 1
        best = report.best(1)[0]
        assert best.seq1_name == f"fam{t.family_id}"
        assert best.seq0_name.startswith("frag|frame")

    def test_tblastx_frag_vs_genome(self, workload):
        _, queries, genome, truth, _ = workload
        t = truth[0]
        frag = Sequence(
            "frag", genome.codes[t.genome_start : t.genome_end], DNA
        )
        report = BlastFamilySearch().tblastx(frag, genome)
        # The fragment must at minimum find its own source locus.
        assert len(report) >= 1

    def test_dna_subject_in_blastp_rejected(self, workload):
        _, queries, genome, _, _ = workload
        with pytest.raises(ValueError, match="expects protein"):
            BlastFamilySearch().blastp(queries, SequenceBank([genome], alphabet=DNA))


class TestSegIntegration:
    def test_masking_reported(self, rng):
        from repro.seqs.alphabet import encode_protein

        junk = Sequence("lowc", encode_protein("A" * 120))
        real = random_protein_bank(rng, 2, mean_length=100)
        queries = SequenceBank(list(real) + [junk])
        search = BlastFamilySearch()
        search.blastp(queries, real)
        assert search.last_masked_fraction > 0.2

    def test_seg_disabled(self, rng):
        bank = random_protein_bank(rng, 2, mean_length=100)
        search = BlastFamilySearch(seg=None)
        search.blastp(bank, bank)
        assert search.last_masked_fraction == 0.0

    def test_masking_kills_lowcomplexity_hits(self, rng):
        from repro.seqs.alphabet import encode_protein

        junk_bank = SequenceBank(
            [Sequence("j1", encode_protein("AK" * 60)),
             Sequence("j2", encode_protein("KA" * 60))]
        )
        with_seg = BlastFamilySearch().blastp(junk_bank, junk_bank)
        without = BlastFamilySearch(seg=None).blastp(junk_bank, junk_bank)
        assert len(with_seg) < len(without)


class TestAcceleratedStep2InModes:
    def test_facade_with_psc_step2_engine(self, workload):
        """The modes facade accepts an accelerator-backed step-2 engine and
        produces the same alignments as the software path."""
        from repro.core.config import PipelineConfig
        from repro.psc.behavioral import PscBehavioral
        from repro.psc.schedule import PscArrayConfig

        _, queries, genome, truth, _ = workload
        cfg = PipelineConfig()
        beh = PscBehavioral(
            PscArrayConfig(
                n_pes=32,
                window=cfg.window,
                threshold=cfg.ungapped_threshold,
                matrix=cfg.matrix,
            )
        )
        hw = BlastFamilySearch(
            cfg, seg=None, step2=lambda idx: beh.step2_hits(idx, cfg.flank)
        ).tblastn(queries, genome)
        sw = BlastFamilySearch(cfg, seg=None).tblastn(queries, genome)
        assert sorted(a.raw_score for a in hw) == sorted(a.raw_score for a in sw)
        assert beh.last_run.breakdown.total_cycles > 0
