"""Subset seed model tests."""

import numpy as np
import pytest

from repro.index.kmer import BankIndex, TwoBankIndex, extract_keys
from repro.index.subset_seed import (
    DEFAULT_SUBSET_SEED,
    EXACT,
    MURPHY10,
    MURPHY4,
    Partition,
    SubsetSeedModel,
)
from repro.seqs.alphabet import AMINO
from repro.seqs.sequence import Sequence, SequenceBank


class TestPartition:
    def test_exact_partition(self):
        m = EXACT.digit_map()
        assert EXACT.n_groups == 20
        # Each canonical residue gets its own group.
        assert len(set(m[:20].tolist())) == 20
        # Ambiguity codes are invalid.
        assert (m[20:] == -1).all()

    def test_murphy10_groups(self):
        m = MURPHY10.digit_map()
        enc = lambda ch: int(AMINO.encode(ch)[0])
        # L, V, I, M share a group.
        assert m[enc("L")] == m[enc("V")] == m[enc("I")] == m[enc("M")]
        # K, R share a group distinct from E.
        assert m[enc("K")] == m[enc("R")]
        assert m[enc("K")] != m[enc("E")]

    def test_partitions_cover_all_canonical(self):
        for p in (EXACT, MURPHY10, MURPHY4):
            m = p.digit_map()
            assert (m[:20] >= 0).all(), p.symbol


class TestSubsetSeedModel:
    def test_key_space_product(self):
        s = SubsetSeedModel.from_pattern("#1")
        assert s.key_space == 20 * 10

    def test_default_seed_span4(self):
        assert DEFAULT_SUBSET_SEED.span == 4
        assert DEFAULT_SUBSET_SEED.key_space == 20 * 10 * 10 * 20

    def test_weight(self):
        assert abs(SubsetSeedModel.from_pattern("####").weight() - 4.0) < 1e-9
        w = DEFAULT_SUBSET_SEED.weight()
        assert 3.0 < w < 4.0

    def test_unknown_symbol_rejected(self):
        with pytest.raises(KeyError, match="unknown seed symbol"):
            SubsetSeedModel.from_pattern("#z")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SubsetSeedModel([])

    def test_keys_unique_per_group_combination(self):
        s = SubsetSeedModel.from_pattern("#4")
        keys = set()
        for a in "ARN":
            for b in "LAFE":  # one residue from each Murphy4 group
                k, valid = extract_keys(AMINO.encode(a + b), s)
                assert valid[0]
                keys.add(int(k[0]))
        assert len(keys) == 12  # 3 exact × 4 groups

    def test_group_equivalence_produces_equal_keys(self):
        s = SubsetSeedModel.from_pattern("#1#1")
        k1, v1 = extract_keys(AMINO.encode("ALAL"), s)
        k2, v2 = extract_keys(AMINO.encode("AVAV"), s)  # L~V in Murphy10
        k3, v3 = extract_keys(AMINO.encode("AKAK"), s)  # K not ~ L
        assert v1[0] and v2[0] and v3[0]
        assert k1[0] == k2[0]
        assert k1[0] != k3[0]


class TestSubsetSeedSensitivity:
    def test_subset_seed_matches_more_homolog_pairs(self, rng):
        """Coarse positions must recover seeds lost to conservative
        substitutions — the stated motivation for subset seeds."""
        from repro.seqs.generate import mutate_protein, random_protein

        p = random_protein(rng, 4000)
        q = mutate_protein(rng, p, identity=0.6, indel_rate=0.0)
        b0 = SequenceBank([Sequence("p", p)], pad=16)
        b1 = SequenceBank([Sequence("q", q)], pad=16)
        from repro.index.kmer import ContiguousSeedModel

        exact = TwoBankIndex.build(b0, b1, ContiguousSeedModel(4)).total_pairs
        subset = TwoBankIndex.build(b0, b1, DEFAULT_SUBSET_SEED).total_pairs
        assert subset > exact

    def test_index_integration(self, small_banks):
        b0, b1 = small_banks
        idx = BankIndex(b0, DEFAULT_SUBSET_SEED)
        assert idx.n_anchors > 0
        assert int(idx.unique_keys.max()) < DEFAULT_SUBSET_SEED.key_space
