"""Cycle-level vs behavioural PSC model equivalence.

The central correctness claim of the simulation substrate: the fast
behavioural model is indistinguishable from the cycle-level operator —
same hits, same scores, same emission order, same arrival cycles, same
cycle counters — so benchmark-scale results carry cycle-sim fidelity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extend.ungapped import ScoreSemantics, ungapped_score_reference
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.index.subset_seed import DEFAULT_SUBSET_SEED
from repro.psc.behavioral import PscBehavioral
from repro.psc.operator import PscOperator
from repro.psc.schedule import PscArrayConfig
from repro.psc.workload import EntryJob, build_jobs, job_stream_bytes
from repro.seqs.generate import random_protein_bank


def make_jobs(seed, n0=8, n1=12, w=3, flank=5):
    rng = np.random.default_rng(seed)
    b0 = random_protein_bank(rng, n0, mean_length=100, name_prefix="q")
    b1 = random_protein_bank(rng, n1, mean_length=100, name_prefix="s")
    idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(w))
    window = w + 2 * flank
    return idx, list(build_jobs(idx, flank, window)), window


def assert_runs_equal(a, b):
    assert np.array_equal(a.offsets0, b.offsets0)
    assert np.array_equal(a.offsets1, b.offsets1)
    assert np.array_equal(a.scores, b.scores)
    assert np.array_equal(a.arrival_cycles, b.arrival_cycles)
    assert a.breakdown == b.breakdown


class TestEquivalence:
    @pytest.mark.parametrize("n_pes,slot_size", [(4, 2), (8, 8), (16, 4), (5, 3)])
    def test_exact_equality_across_geometries(self, n_pes, slot_size):
        idx, jobs, window = make_jobs(seed=1)
        cfg = PscArrayConfig(
            n_pes=n_pes, slot_size=slot_size, window=window, threshold=16
        )
        assert_runs_equal(PscOperator(cfg).run(jobs), PscBehavioral(cfg).run(jobs))

    @pytest.mark.parametrize("semantics", list(ScoreSemantics))
    def test_equality_under_both_semantics(self, semantics):
        idx, jobs, window = make_jobs(seed=2)
        cfg = PscArrayConfig(
            n_pes=6, slot_size=3, window=window, threshold=14, semantics=semantics
        )
        assert_runs_equal(PscOperator(cfg).run(jobs), PscBehavioral(cfg).run(jobs))

    def test_low_threshold_heavy_traffic(self):
        """Thick result traffic exercises the drain-tail recurrence."""
        idx, jobs, window = make_jobs(seed=3)
        cfg = PscArrayConfig(n_pes=4, slot_size=2, window=window, threshold=1)
        a = PscOperator(cfg).run(jobs)
        b = PscBehavioral(cfg).run(jobs)
        assert len(a) > 100  # traffic actually heavy
        assert_runs_equal(a, b)
        assert a.breakdown.total_cycles > a.breakdown.schedule_end

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_property(self, seed):
        rng = np.random.default_rng(seed)
        n_pes = int(rng.integers(2, 12))
        slot = int(rng.integers(1, n_pes + 1))
        thr = int(rng.integers(5, 30))
        idx, jobs, window = make_jobs(seed=seed, n0=4, n1=6)
        cfg = PscArrayConfig(
            n_pes=n_pes, slot_size=slot, window=window, threshold=thr
        )
        assert_runs_equal(PscOperator(cfg).run(jobs), PscBehavioral(cfg).run(jobs))


class TestAgainstSoftwareKernel:
    def test_hits_match_ungapped_extender(self):
        """The PSC operator must report exactly the pairs the software
        step-2 kernel reports (the paper's validation path)."""
        from repro.extend.ungapped import UngappedConfig, UngappedExtender

        rng = np.random.default_rng(4)
        b0 = random_protein_bank(rng, 10, mean_length=120, name_prefix="q")
        b1 = random_protein_bank(rng, 10, mean_length=120, name_prefix="s")
        idx = TwoBankIndex.build(b0, b1, DEFAULT_SUBSET_SEED)
        flank = 8
        window = DEFAULT_SUBSET_SEED.span + 2 * flank
        threshold = 18
        cfg = PscArrayConfig(n_pes=8, slot_size=4, window=window, threshold=threshold)
        hw = PscBehavioral(cfg).run_index(idx, flank)
        sw = UngappedExtender(
            UngappedConfig(w=DEFAULT_SUBSET_SEED.span, n=flank, threshold=threshold)
        ).run(idx)
        # Same hit set (order may differ: software is entry-row major).
        hw_set = set(zip(hw.offsets0.tolist(), hw.offsets1.tolist(), hw.scores.tolist(), strict=True))
        sw_set = set(zip(sw.offsets0.tolist(), sw.offsets1.tolist(), sw.scores.tolist(), strict=True))
        assert hw_set == sw_set

    def test_scores_match_reference_scalar(self):
        idx, jobs, window = make_jobs(seed=5)
        cfg = PscArrayConfig(n_pes=4, slot_size=2, window=window, threshold=10)
        result = PscOperator(cfg).run(jobs)
        b0 = idx.index0.bank
        b1 = idx.index1.bank
        flank = (window - 3) // 2
        for i in range(min(len(result), 40)):
            w0 = b0.windows(result.offsets0[i : i + 1], flank, window)[0]
            w1 = b1.windows(result.offsets1[i : i + 1], flank, window)[0]
            assert result.scores[i] == ungapped_score_reference(w0, w1)


class TestStep2Adapter:
    def test_step2_hits_stats(self):
        idx, jobs, window = make_jobs(seed=6)
        cfg = PscArrayConfig(n_pes=8, slot_size=4, window=window, threshold=16)
        beh = PscBehavioral(cfg)
        flank = (window - 3) // 2
        hits = beh.step2_hits(idx, flank)
        assert hits.stats.pairs == idx.total_pairs
        assert hits.stats.hits == len(hits)
        assert beh.last_run.breakdown.total_cycles > 0

    def test_estimate_matches_run_when_drain_hidden(self):
        idx, jobs, window = make_jobs(seed=7)
        cfg = PscArrayConfig(n_pes=8, slot_size=4, window=window, threshold=60)
        beh = PscBehavioral(cfg)
        run = beh.run(jobs)
        est = beh.estimate(idx)
        assert len(run) == 0  # threshold kills all traffic
        assert run.breakdown.total_cycles == est.total_cycles


class TestWorkloadHelpers:
    def test_job_properties(self):
        idx, jobs, window = make_jobs(seed=8)
        job = jobs[0]
        assert job.windows0.shape == (job.k0, window)
        assert job.windows1.shape == (job.k1, window)
        assert job.pair_count == job.k0 * job.k1

    def test_job_stream_bytes(self):
        idx, jobs, window = make_jobs(seed=8)
        in_bytes, per_result = job_stream_bytes(idx, window)
        k0s, k1s = idx.list_length_pairs()
        assert in_bytes == int((k0s.sum() + k1s.sum()) * (window + 4))
        assert per_result == 12
