"""Unit tests: request context, flight recorder, SLO tracker, profiler, top.

The serve-integration twins (ids over HTTP, span adoption across pool
death) live in ``tests/test_serve_tracing.py``; everything here runs
without a server or a worker pool.
"""

import json
import re
import threading

import pytest

from repro.obs.context import RequestContext, accept_request_id, mint_request_id
from repro.obs.export import validate_flight_records
from repro.obs.flight import FlightRecord, FlightRecorder, RequestTraceStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PROFILE_VERSION, SamplingProfiler
from repro.obs.slo import SloConfig, SloTracker
from repro.serve.top import histogram_quantile, parse_prometheus, render_frame


class TestRequestContext:
    def test_minted_ids_are_wellformed_and_unique(self):
        ids = {mint_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{32}", i) for i in ids)

    def test_wellformed_inbound_id_is_honoured(self):
        assert accept_request_id("client-42.A_b") == "client-42.A_b"

    @pytest.mark.parametrize(
        "bad",
        [None, "", "a/b", "../etc", "a b", "-leading", "x" * 65, "a\nb"],
    )
    def test_malformed_inbound_id_is_replaced(self, bad):
        got = accept_request_id(bad)
        assert got != bad
        assert re.fullmatch(r"[0-9a-f]{32}", got)

    def test_context_new_always_mints_a_fresh_trace_id(self):
        a = RequestContext.new("same-id")
        b = RequestContext.new("same-id")
        assert a.request_id == b.request_id == "same-id"
        assert a.trace_id != b.trace_id

    def test_context_is_frozen(self):
        ctx = RequestContext.new()
        with pytest.raises(AttributeError):
            ctx.request_id = "other"


def _record(i, **over):
    kw = dict(
        request_id=f"req-{i}",
        trace_id=f"trace-{i}",
        request_index=i,
        status="ok",
        code=200,
        breakdown={"queue": 0.001, "total": 0.1},
        degraded=False,
    )
    kw.update(over)
    return FlightRecord(**kw)


class TestFlightRecorder:
    def test_ring_keeps_newest_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(_record(i))
        assert recorder.recorded == 10
        assert recorder.dropped == 6
        snapshot = recorder.snapshot()
        assert [r["request_index"] for r in snapshot] == [9, 8, 7, 6]
        assert [r["request_index"] for r in recorder.snapshot(limit=2)] == [9, 8]

    def test_find_returns_newest_match(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(_record(0, request_id="dup", status="error", code=500))
        recorder.record(_record(1, request_id="dup"))
        found = recorder.find("dup")
        assert found is not None and found["request_index"] == 1
        assert recorder.find("absent") is None

    def test_document_is_schema_valid_and_dumpable(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.record(_record(0))
        recorder.record(
            _record(
                1,
                status="shed",
                code=429,
                shed_reason="queue-full",
                retry_after=0.5,
            )
        )
        doc = recorder.to_dict()
        assert validate_flight_records(doc) == []
        out = tmp_path / "flight.json"
        recorder.dump(str(out))
        assert validate_flight_records(json.loads(out.read_text())) == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestRequestTraceStore:
    def test_eviction_and_newest_wins(self):
        store = RequestTraceStore(capacity=2)
        store.retain({"request_id": "a", "n": 1})
        store.retain({"request_id": "b", "n": 1})
        store.retain({"request_id": "a", "n": 2})  # refresh: a becomes newest
        store.retain({"request_id": "c", "n": 1})  # evicts b, not a
        assert store.get("b") is None
        assert store.get("a") == {"request_id": "a", "n": 2}
        assert store.ids() == ["a", "c"]


class TestSloTracker:
    def make(self, **cfg):
        cfg.setdefault("latency_objective_seconds", 1.0)
        cfg.setdefault("windows", (("5m", 300.0),))
        registry = MetricsRegistry()
        return SloTracker(SloConfig(**cfg), registry), registry

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SloConfig(latency_objective_seconds=0.0)
        with pytest.raises(ValueError):
            SloConfig(latency_target=1.0)
        with pytest.raises(ValueError):
            SloConfig(windows=())
        with pytest.raises(ValueError):
            SloConfig(windows=(("zero", 0.0),))

    def test_burn_rate_math(self):
        tracker, _ = self.make(availability_target=0.99, latency_target=0.95)
        now = 10_000.0
        for i in range(98):
            tracker.record(True, 0.1, f"ok-{i}", now=now)
        tracker.record(False, 0.1, "bad-0", now=now)
        tracker.record(False, 0.1, "bad-1", now=now)
        burns = tracker.burn_rates(now=now)["5m"]
        # 2 bad of 100 against a 1% budget: burning 2x the budget.
        assert burns["availability"] == pytest.approx(2.0)
        assert burns["latency"] == 0.0

    def test_slow_ok_requests_burn_latency_budget_only(self):
        tracker, _ = self.make(latency_target=0.95)
        now = 10_000.0
        for i in range(9):
            tracker.record(True, 0.1, f"fast-{i}", now=now)
        tracker.record(True, 5.0, "slow-0", now=now)
        burns = tracker.burn_rates(now=now)["5m"]
        assert burns["availability"] == 0.0
        # 1 slow of 10 against a 5% budget: burning 2x.
        assert burns["latency"] == pytest.approx(2.0)

    def test_old_buckets_age_out_of_the_window(self):
        tracker, _ = self.make()
        tracker.record(False, 0.1, "old", now=1_000.0)
        assert tracker.burn_rates(now=1_000.0)["5m"]["availability"] > 0
        assert tracker.burn_rates(now=2_000.0)["5m"]["availability"] == 0.0

    def test_empty_window_burns_zero(self):
        tracker, _ = self.make()
        assert tracker.burn_rates(now=0.0)["5m"] == {
            "availability": 0.0,
            "latency": 0.0,
        }

    def test_publish_registers_and_refreshes_gauges(self):
        tracker, registry = self.make()
        tracker.register_gauges()
        gauge = registry.gauge("serve_slo_burn_rate", slo="availability", window="5m")
        assert gauge.value == 0.0
        now = 10_000.0
        tracker.record(False, 0.1, "bad", now=now)
        tracker.publish(now=now)
        assert gauge.value > 0

    def test_snapshot_carries_exemplars_by_bucket_edge(self):
        tracker, _ = self.make()
        now = 10_000.0
        tracker.record(True, 0.0005, "sub-ms", now=now)
        tracker.record(True, 2.0, "two-sec", now=now)
        snap = tracker.snapshot(now=now)
        assert snap["objectives"]["latency_objective_seconds"] == 1.0
        # 0.0005 s lands at the 0.001 edge, 2.0 s at the 3 edge.
        assert snap["latency_exemplars"]["0.001"] == "sub-ms"
        assert snap["latency_exemplars"]["3"] == "two-sec"


class TestSamplingProfiler:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_seconds=0.0)

    def test_run_for_collects_samples_with_phases(self):
        profiler = SamplingProfiler(interval_seconds=0.002)
        profiler.install()
        report = profiler.run_for(0.2)
        assert report is not None
        assert report["version"] == PROFILE_VERSION
        assert report["ticks"] > 0 and report["samples"] > 0
        assert report["window_seconds"] == 0.2
        # The waiting main thread is in run_for → _SLEEP.wait: some stack
        # must exist and each collapsed line ends with its count.
        assert all(
            line.rsplit(" ", 1)[1].isdigit() for line in report["collapsed"]
        )
        assert sum(report["phases"].values()) == report["samples"]

    def test_run_for_refused_while_session_running(self):
        profiler = SamplingProfiler(interval_seconds=0.005)
        profiler.install()
        profiler.start()
        try:
            assert profiler.running
            assert profiler.run_for(0.01) is None
        finally:
            profiler.stop()
        assert not profiler.running
        assert profiler.report()["version"] == PROFILE_VERSION

    def test_report_refused_while_armed(self):
        profiler = SamplingProfiler(interval_seconds=0.01)
        profiler.install()
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.report()
        finally:
            profiler.stop()

    def test_uninstalled_run_for_returns_none(self):
        assert SamplingProfiler().run_for(0.01) is None

    def test_install_off_main_thread_is_refused(self):
        profiler = SamplingProfiler()
        failures = []

        def attempt():
            try:
                profiler.install()
            except RuntimeError:
                failures.append(True)

        t = threading.Thread(target=attempt)
        t.start()
        t.join(timeout=5.0)
        assert failures == [True]


SCRAPE = """\
# TYPE serve_requests_total counter
serve_requests_total{status="ok"} 9
serve_requests_total{status="error"} 1
# TYPE serve_shed_total counter
serve_shed_total 2
# TYPE serve_queue_depth_current gauge
serve_queue_depth_current 1
# TYPE serve_pool_workers gauge
serve_pool_workers 2
# TYPE serve_resident_bank_bytes gauge
serve_resident_bank_bytes 1048576
# TYPE serve_breaker_state gauge
serve_breaker_state 0
# TYPE serve_slo_burn_rate gauge
serve_slo_burn_rate{slo="availability",window="5m"} 1.5
# TYPE serve_request_seconds histogram
serve_request_seconds_bucket{le="0.1"} 6
serve_request_seconds_bucket{le="1"} 9
serve_request_seconds_bucket{le="+Inf"} 10
serve_request_seconds_sum 4.2
serve_request_seconds_count 10
"""


class TestServeTop:
    def test_parse_prometheus(self):
        sample = parse_prometheus(SCRAPE)
        assert sample[("serve_requests_total", (("status", "ok"),))] == 9.0
        assert sample[("serve_shed_total", ())] == 2.0
        assert (
            sample[("serve_request_seconds_bucket", (("le", "+Inf"),))] == 10.0
        )
        # Garbage lines are skipped, not fatal.
        assert parse_prometheus("not a metric\n# comment\n") == {}

    def test_histogram_quantile_interpolates(self):
        buckets = [(0.1, 6.0), (1.0, 9.0), (float("inf"), 10.0)]
        # p50: rank 5 inside the first bucket → 0.1 * 5/6.
        assert histogram_quantile(buckets, 0.50) == pytest.approx(0.1 * 5 / 6)
        # p90: rank 9 lands exactly on the 1s edge.
        assert histogram_quantile(buckets, 0.90) == pytest.approx(1.0)
        # p99 falls in +Inf: reports the highest finite edge.
        assert histogram_quantile(buckets, 0.99) == pytest.approx(1.0)
        assert histogram_quantile([], 0.5) is None
        assert histogram_quantile([(0.1, 0.0)], 0.5) is None

    def test_render_frame_first_sample_and_delta(self):
        cur = {
            "at": 100.0,
            "metrics": parse_prometheus(SCRAPE),
            "debug": {
                "records": [
                    {
                        "request_id": "abc",
                        "status": "ok",
                        "code": 200,
                        "breakdown": {"total": 0.25},
                        "retry_events": 1,
                    }
                ]
            },
        }
        first = render_frame(None, cur, "localhost", 8641)
        assert "first sample" in first and "abc" in first
        assert "breaker closed" in first
        assert "availability/5m=1.50" in first
        later = dict(cur, at=110.0, metrics=parse_prometheus(
            SCRAPE.replace('status="ok"} 9', 'status="ok"} 29')
        ))
        frame = render_frame(cur, later, "localhost", 8641)
        assert "qps    2.00" in frame  # 20 served over 10 s

    def test_render_frame_unreachable(self):
        assert "unreachable" in render_frame(None, None, "localhost", 1)
