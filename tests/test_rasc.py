"""RASC-100 platform model tests: ADR, NUMAlink, FPGAs, host model."""

import numpy as np
import pytest

from repro.hwsim.dma import LinkModel
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.psc.schedule import PscArrayConfig
from repro.rasc.adr import AdrBlock, AdrError
from repro.rasc.host import HostCostModel
from repro.rasc.numalink import NumalinkFabric, TransferPlan
from repro.rasc.platform import Rasc100
from repro.seqs.generate import random_protein_bank


class TestAdr:
    def test_write_read_roundtrip(self):
        adr = AdrBlock()
        adr.write("THRESHOLD", 26)
        assert adr.read("THRESHOLD") == 26
        assert adr.writes == 1 and adr.reads == 1

    def test_unknown_register(self):
        adr = AdrBlock()
        with pytest.raises(AdrError, match="unknown"):
            adr.read("NOPE")
        with pytest.raises(AdrError, match="unknown"):
            adr.write("NOPE", 1)

    def test_read_only_registers(self):
        adr = AdrBlock()
        for name in ("STATUS", "RESULT_COUNT", "CYCLE_COUNT"):
            with pytest.raises(AdrError, match="read-only"):
                adr.write(name, 1)

    def test_hw_side_can_set_status(self):
        adr = AdrBlock()
        adr._hw_set("STATUS", 2)
        assert adr.read("STATUS") == 2

    def test_configured_flag(self):
        adr = AdrBlock()
        assert not adr.configured()
        adr.write("WINDOW", 28)
        assert adr.configured()


class TestNumalink:
    def test_exclusive_io_seconds(self):
        fabric = NumalinkFabric(LinkModel(1e9, 1e-6))
        t = fabric.io_seconds(TransferPlan(bytes_in=10**6, bytes_out=10**6))
        assert t == pytest.approx(2e-6 + 2e-3)

    def test_shared_halves_bandwidth(self):
        fabric = NumalinkFabric(LinkModel(1e9, 0.0))
        plans = [TransferPlan(10**6, 0), TransferPlan(10**6, 0)]
        shared = fabric.shared_io_seconds(plans)
        solo = fabric.io_seconds(plans[0], n_transfers=0)
        assert shared[0] == pytest.approx(2 * solo)

    def test_record_accumulates(self):
        fabric = NumalinkFabric()
        fabric.record(TransferPlan(100, 50))
        assert fabric.link.accounting.bytes_in == 100
        assert fabric.link.accounting.bytes_out == 50


class TestHostCostModel:
    def test_step_times_linear_in_counts(self):
        host = HostCostModel()
        assert host.step2_seconds(2_000_000) == pytest.approx(
            2 * host.step2_seconds(1_000_000)
        )

    def test_steps_bundle(self):
        host = HostCostModel()
        s = host.steps(step1_residues=10**6, step2_cells=10**9, step3_cells=10**7)
        assert s.total == pytest.approx(s.step1 + s.step2 + s.step3)
        f = s.fractions()
        assert abs(sum(f) - 1.0) < 1e-12
        assert f[1] == max(f)  # step 2 dominates at these counts

    def test_calibration_hits_anchor(self):
        host = HostCostModel.calibrated(step2_anchor=(10**12, 73_492.0))
        assert host.step2_seconds(10**12) == pytest.approx(73_492.0)

    def test_calibration_partial(self):
        host = HostCostModel.calibrated(step1_anchor=(10**9, 480.0))
        assert host.index_ns_per_residue == pytest.approx(480.0)
        assert host.ungapped_ns_per_cell == HostCostModel().ungapped_ns_per_cell

    def test_zero_fraction_guard(self):
        s = HostCostModel().steps(0, 0, 0)
        assert s.fractions() == (0.0, 0.0, 0.0)


def make_index(seed=0):
    rng = np.random.default_rng(seed)
    b0 = random_protein_bank(rng, 8, mean_length=100, name_prefix="q")
    b1 = random_protein_bank(rng, 10, mean_length=100, name_prefix="s")
    return TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))


class TestRasc100:
    CFG = PscArrayConfig(n_pes=8, slot_size=4, window=3 + 2 * 5, threshold=15)

    def test_run_requires_bitstream(self):
        rasc = Rasc100()
        with pytest.raises(AdrError, match="no bitstream"):
            rasc.run_step2(make_index(), flank=5)

    def test_single_fpga_run(self):
        rasc = Rasc100()
        rasc.load_bitstream(self.CFG, fpga_id=0)
        run = rasc.run_step2(make_index(), flank=5)
        assert len(run.hits) == run.hits.stats.hits
        assert run.compute_seconds > 0
        assert run.plan.bytes_in > 0
        assert run.plan.bytes_out == len(run.hits) * 12
        # ADR mirrors the run.
        adr = rasc.fpgas[0].adr
        assert adr.read("RESULT_COUNT") == len(run.hits)
        assert adr.read("STATUS") == 2

    def test_cycle_model_fidelity_option(self):
        rasc_b = Rasc100()
        rasc_b.load_bitstream(self.CFG, fpga_id=0, model="behavioral")
        rasc_c = Rasc100()
        rasc_c.load_bitstream(self.CFG, fpga_id=0, model="cycle")
        idx = make_index()
        rb = rasc_b.run_step2(idx, flank=5)
        rc = rasc_c.run_step2(idx, flank=5)
        assert np.array_equal(rb.hits.offsets0, rc.hits.offsets0)
        assert rb.breakdown == rc.breakdown

    def test_bad_model_rejected(self):
        rasc = Rasc100()
        with pytest.raises(ValueError, match="unknown model"):
            rasc.load_bitstream(self.CFG, model="rtl")

    def test_dual_run_wall_time(self):
        rasc = Rasc100()
        rasc.load_bitstream(self.CFG, fpga_id=0)
        rasc.load_bitstream(self.CFG, fpga_id=1)
        idx0, idx1 = make_index(1), make_index(2)
        runs, wall = rasc.run_step2_dual([idx0, idx1], flank=5)
        assert len(runs) == 2
        # Wall is at least the slower compute, at most the sum plus I/O.
        assert wall >= max(r.compute_seconds for r in runs)
        assert wall <= sum(r.compute_seconds for r in runs) + 1.0

    def test_dual_requires_two_workloads(self):
        rasc = Rasc100()
        rasc.load_bitstream(self.CFG, fpga_id=0)
        with pytest.raises(ValueError, match="expected 2"):
            rasc.run_step2_dual([make_index()], flank=5)

    def test_modeled_step2_matches_behavioural_when_compute_bound(self):
        rasc = Rasc100()
        rasc.load_bitstream(self.CFG, fpga_id=0)
        idx = make_index()
        run = rasc.run_step2(idx, flank=5)
        k0s, k1s = idx.list_length_pairs()
        modeled, breakdown = rasc.modeled_step2_seconds(
            k0s, k1s, expected_hits=len(run.hits), config=self.CFG
        )
        # Statistics-mode schedule excludes the drain tail only.
        assert breakdown.schedule_end == run.breakdown.schedule_end
        assert modeled == pytest.approx(run.wall_seconds, rel=0.2)
