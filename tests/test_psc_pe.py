"""Processing-element datapath tests (paper Figure 2)."""

import numpy as np
import pytest

from repro.extend.ungapped import ScoreSemantics, ungapped_score_reference
from repro.hwsim.kernel import SimulationError
from repro.hwsim.memory import Rom
from repro.psc.pe import ProcessingElement
from repro.seqs.alphabet import encode_protein
from repro.seqs.matrices import BLOSUM62

ROM = Rom.substitution_rom(BLOSUM62)


def loaded_pe(window_text, semantics=ScoreSemantics.KADANE):
    pe = ProcessingElement(len(window_text), ROM, semantics)
    pe.begin_load()
    for r in encode_protein(window_text):
        pe.load_shift(int(r))
    return pe


class TestLoadPhase:
    def test_load_sets_loaded_flag(self):
        pe = ProcessingElement(4, ROM)
        pe.begin_load()
        for r in encode_protein("MKVL"):
            assert not pe.loaded or r == encode_protein("MKVL")[-1]
            pe.load_shift(int(r))
        assert pe.loaded

    def test_load_overrun_fatal(self):
        pe = loaded_pe("MKVL")
        with pytest.raises(SimulationError, match="load overrun"):
            pe.load_shift(0)

    def test_compute_before_load_fatal(self):
        pe = ProcessingElement(4, ROM)
        with pytest.raises(SimulationError, match="before load"):
            pe.begin_compute()


class TestComputePhase:
    def test_score_matches_reference(self):
        s0, s1 = "MKVLAWTR", "MKVLAWTR"
        pe = loaded_pe(s0)
        score = pe.compute_window(encode_protein(s1))
        assert score == ungapped_score_reference(
            encode_protein(s0), encode_protein(s1)
        )

    def test_result_only_on_last_cycle(self):
        pe = loaded_pe("MKVL")
        pe.begin_compute()
        outs = [pe.compute_step(int(r)) for r in encode_protein("MKVL")]
        assert outs[:-1] == [None, None, None]
        assert outs[-1] is not None

    def test_feedback_loop_reuses_window(self):
        """The shift-register feedback lets one load serve many computes."""
        pe = loaded_pe("MKVLAW")
        first = pe.compute_window(encode_protein("MKVLAW"))
        second = pe.compute_window(encode_protein("MKVLAW"))
        third = pe.compute_window(encode_protein("WWWWWW"))
        assert first == second
        assert third == ungapped_score_reference(
            encode_protein("MKVLAW"), encode_protein("WWWWWW")
        )

    def test_compute_overrun_fatal(self):
        pe = loaded_pe("MK")
        pe.compute_window(encode_protein("MK"))
        with pytest.raises(SimulationError, match="compute overrun"):
            pe.compute_step(0)

    def test_busy_cycle_accounting(self):
        pe = loaded_pe("MKVL")
        pe.compute_window(encode_protein("MKVL"))
        pe.compute_window(encode_protein("AWTR"))
        assert pe.busy_cycles == 8

    def test_paper_literal_semantics(self):
        pe = loaded_pe("WAWA", semantics=ScoreSemantics.PAPER_LITERAL)
        score = pe.compute_window(encode_protein("WWWW"))
        assert score == ungapped_score_reference(
            encode_protein("WAWA"),
            encode_protein("WWWW"),
            semantics=ScoreSemantics.PAPER_LITERAL,
        )

    def test_randomised_against_reference(self, rng):
        for _ in range(25):
            L = int(rng.integers(2, 30))
            w0 = rng.integers(0, 25, L).astype(np.uint8)
            w1 = rng.integers(0, 25, L).astype(np.uint8)
            pe = ProcessingElement(L, ROM)
            pe.begin_load()
            for r in w0:
                pe.load_shift(int(r))
            assert pe.compute_window(w1) == ungapped_score_reference(w0, w1)
