"""Alignment rendering tests."""

import numpy as np
import pytest

from repro.core.pipeline import SeedComparisonPipeline
from repro.core.render import alignment_traceback, render_alignment, render_report
from repro.seqs.generate import make_family, plant_homologs, random_genome
from repro.seqs.sequence import Sequence, SequenceBank
from repro.seqs.translate import translated_bank


@pytest.fixture(scope="module")
def rendered_setup():
    rng = np.random.default_rng(77)
    fam = make_family(rng, 0, 120, 1, identity_range=(0.75, 0.75))
    genome = random_genome(rng, 30_000)
    genome, truth = plant_homologs(rng, genome, [fam])
    queries = SequenceBank([Sequence("query0", fam.ancestor)])
    pipe = SeedComparisonPipeline()
    report = pipe.compare_with_genome(queries, genome)
    frames = translated_bank(genome)
    return queries, frames, report


class TestTraceback:
    def test_traceback_score_matches_report(self, rendered_setup):
        queries, frames, report = rendered_setup
        best = report.best(1)[0]
        tb = alignment_traceback(queries, frames, best)
        # SW within the reported ranges reproduces the X-drop optimum.
        assert tb.score == best.raw_score

    def test_traceback_strings_well_formed(self, rendered_setup):
        queries, frames, report = rendered_setup
        tb = alignment_traceback(queries, frames, report.best(1)[0])
        assert len(tb.aligned0) == len(tb.aligned1)
        assert not (set(tb.aligned0) - set("ARNDCQEGHILKMFPSTWYVBZX*-"))


class TestRenderAlignment:
    def test_blast_style_block(self, rendered_setup):
        queries, frames, report = rendered_setup
        best = report.best(1)[0]
        text = render_alignment(queries, frames, best, width=50)
        assert text.startswith(f">{best.seq0_name} vs {best.seq1_name}")
        assert "Score =" in text and "Expect =" in text
        assert "Identities =" in text and "Positives =" in text
        assert "Query  " in text and "Sbjct  " in text

    def test_line_width_respected(self, rendered_setup):
        queries, frames, report = rendered_setup
        text = render_alignment(queries, frames, report.best(1)[0], width=40)
        for line in text.splitlines():
            if line.startswith(("Query", "Sbjct")):
                seq_part = line.split()[2]
                assert len(seq_part) <= 40

    def test_coordinates_continuous(self, rendered_setup):
        """End coordinate of one chunk + 1 equals start of the next."""
        queries, frames, report = rendered_setup
        text = render_alignment(queries, frames, report.best(1)[0], width=30)
        q_lines = [l.split() for l in text.splitlines() if l.startswith("Query")]
        for prev, cur in zip(q_lines, q_lines[1:], strict=False):
            assert int(cur[1]) == int(prev[3]) + 1

    def test_identity_counts_sane(self, rendered_setup):
        queries, frames, report = rendered_setup
        best = report.best(1)[0]
        text = render_alignment(queries, frames, best)
        # ~75% planted identity => identities above half the columns.
        import re

        m = re.search(r"Identities = (\d+)/(\d+)", text)
        ident, cols = int(m.group(1)), int(m.group(2))
        assert 0.5 < ident / cols <= 1.0


class TestRenderReport:
    def test_header_and_blocks(self, rendered_setup):
        queries, frames, report = rendered_setup
        text = render_report(queries, frames, report, max_alignments=3)
        assert text.startswith("# ")
        assert text.count(">query0 vs") == min(3, len(report))
