"""Synthetic workload generator tests."""

import numpy as np
import pytest

from repro.seqs.alphabet import DNA
from repro.seqs.generate import (
    PAPER_BANKS,
    ROBINSON_FREQUENCIES,
    make_family,
    mutate_protein,
    paper_bank_spec,
    plant_homologs,
    random_genome,
    random_protein,
    random_protein_bank,
    reverse_translate,
)
from repro.seqs.sequence import Sequence
from repro.seqs.translate import STANDARD_CODE, reverse_complement, translate


class TestBackground:
    def test_frequencies_normalised(self):
        assert ROBINSON_FREQUENCIES.shape == (20,)
        assert abs(ROBINSON_FREQUENCIES.sum() - 1.0) < 1e-12

    def test_random_protein_composition(self, rng):
        p = random_protein(rng, 50_000)
        assert p.dtype == np.uint8
        assert p.max() < 20
        # Leucine (code 10) is the most frequent residue; check within 20%.
        freq_l = (p == 10).mean()
        assert abs(freq_l - ROBINSON_FREQUENCIES[10]) < 0.2 * ROBINSON_FREQUENCIES[10]

    def test_determinism(self):
        a = random_protein(np.random.default_rng(5), 100)
        b = random_protein(np.random.default_rng(5), 100)
        assert np.array_equal(a, b)


class TestBankGeneration:
    def test_bank_size_and_mean_length(self, rng):
        bank = random_protein_bank(rng, 300, mean_length=200.0)
        assert len(bank) == 300
        mean = bank.total_residues / len(bank)
        assert 160 < mean < 240  # log-normal mean within 20%

    def test_min_length_respected(self, rng):
        bank = random_protein_bank(rng, 100, mean_length=35.0, min_length=30)
        assert int(bank.lengths.min()) >= 30

    def test_paper_bank_spec(self):
        n, mean = paper_bank_spec("30K", scale=0.01)
        assert n == 300
        assert abs(mean - PAPER_BANKS["30K"][1] / 30_000) < 1e-9

    def test_paper_bank_spec_minimum_one(self):
        n, _ = paper_bank_spec("1K", scale=1e-9)
        assert n == 1


class TestGenome:
    def test_gc_content(self, rng):
        g = random_genome(rng, 200_000, gc_content=0.41)
        gc = float(np.isin(g.codes, [1, 2]).mean())
        assert abs(gc - 0.41) < 0.01

    def test_alphabet(self, rng):
        assert random_genome(rng, 10).alphabet is DNA


class TestMutation:
    def test_identity_controls_divergence(self, rng):
        p = random_protein(rng, 2000)
        hi = mutate_protein(rng, p, identity=0.95, indel_rate=0.0)
        lo = mutate_protein(rng, p, identity=0.40, indel_rate=0.0)
        id_hi = (hi == p).mean()
        id_lo = (lo == p).mean()
        assert id_hi > 0.9
        assert 0.3 < id_lo < 0.55
        assert id_hi > id_lo

    def test_no_indels_preserves_length(self, rng):
        p = random_protein(rng, 500)
        assert len(mutate_protein(rng, p, identity=0.5, indel_rate=0.0)) == 500

    def test_indels_change_length(self, rng):
        p = random_protein(rng, 500)
        lengths = {
            len(mutate_protein(rng, p, identity=0.9, indel_rate=0.05))
            for _ in range(10)
        }
        assert len(lengths) > 1

    def test_invalid_identity_rejected(self, rng):
        with pytest.raises(ValueError, match="identity"):
            mutate_protein(rng, random_protein(rng, 10), identity=0.0)

    def test_substitutions_are_conservative(self, rng):
        # Replacement kernel should favour positive-scoring substitutions.
        from repro.seqs.matrices import BLOSUM62

        p = random_protein(rng, 5000)
        m = mutate_protein(rng, p, identity=0.3, indel_rate=0.0)
        changed = p != m
        scores = BLOSUM62.pair_scores(p[changed], m[changed]).astype(float)
        # Mean substitution score of the channel must beat random pairing.
        rand = BLOSUM62.pair_scores(
            random_protein(rng, 5000), random_protein(rng, 5000)
        ).astype(float)
        assert scores.mean() > rand.mean() + 0.3


class TestReverseTranslate:
    def test_translation_roundtrip(self, rng):
        p = random_protein(rng, 300)
        nt = reverse_translate(rng, p)
        assert len(nt) == 900
        back = STANDARD_CODE.translate_codes(nt)
        assert np.array_equal(back, p)

    def test_synonymous_variation(self, rng):
        p = random_protein(rng, 200)
        nt1 = reverse_translate(rng, p)
        nt2 = reverse_translate(rng, p)
        assert not np.array_equal(nt1, nt2)  # random codon choice


class TestFamiliesAndPlanting:
    def test_make_family(self, rng):
        fam = make_family(rng, 3, 150, 4)
        assert fam.family_id == 3
        assert len(fam.members) == 4
        assert len(fam.ancestor) == 150

    def test_plant_preserves_length_and_truth(self, rng):
        fam = make_family(rng, 0, 100, 2)
        genome = random_genome(rng, 30_000)
        planted, truth = plant_homologs(rng, genome, [fam])
        assert len(planted) == len(genome)
        assert len(truth) == 2
        for t in truth:
            assert 0 <= t.genome_start < t.genome_end <= len(planted)
            assert t.strand in (-1, 1)

    def test_planted_member_recoverable(self, rng):
        fam = make_family(rng, 0, 80, 1, identity_range=(1.0, 1.0))
        genome = random_genome(rng, 20_000)
        planted, truth = plant_homologs(rng, genome, [fam])
        t = truth[0]
        segment = planted.codes[t.genome_start : t.genome_end]
        if t.strand == -1:
            segment = reverse_complement(segment)
        back = STANDARD_CODE.translate_codes(segment)
        assert np.array_equal(back, fam.members[0])

    def test_plants_do_not_overlap(self, rng):
        fams = [make_family(rng, i, 60, 3) for i in range(4)]
        genome = random_genome(rng, 50_000)
        _, truth = plant_homologs(rng, genome, fams)
        spans = sorted((t.genome_start, t.genome_end) for t in truth)
        for (_s1, e1), (s2, _e2) in zip(spans, spans[1:], strict=False):
            assert e1 <= s2

    def test_oversized_member_rejected(self, rng):
        fam = make_family(rng, 0, 100, 1)
        genome = random_genome(rng, 30)
        with pytest.raises(ValueError, match="too short"):
            plant_homologs(rng, genome, [fam])

    def test_requires_dna(self, rng):
        fam = make_family(rng, 0, 10, 1)
        with pytest.raises(ValueError, match="DNA"):
            plant_homologs(rng, Sequence.from_text("p", "MKV"), [fam])
