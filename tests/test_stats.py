"""Karlin-Altschul statistics tests."""

import math

import numpy as np
import pytest

from repro.extend.stats import (
    GAPPED_PARAMS,
    KarlinParams,
    effective_search_space,
    evalue,
    gapped_params,
    karlin_lambda,
    ungapped_params,
)
from repro.seqs.matrices import BLOSUM45, BLOSUM62, BLOSUM80, SubstitutionMatrix


class TestLambda:
    def test_blosum62_matches_ncbi(self):
        """NCBI publishes λ=0.3176 for ungapped BLOSUM62."""
        lam = karlin_lambda(BLOSUM62)
        assert abs(lam - 0.3176) < 0.001

    def test_blosum80_larger_lambda(self):
        # Harder matrices (higher target identity) have larger λ.
        assert karlin_lambda(BLOSUM80) > karlin_lambda(BLOSUM62)
        assert karlin_lambda(BLOSUM62) > karlin_lambda(BLOSUM45)

    def test_lambda_solves_equation(self):
        from repro.seqs.generate import ROBINSON_FREQUENCIES

        lam = karlin_lambda(BLOSUM62)
        p = ROBINSON_FREQUENCIES
        s = BLOSUM62.scores[:20, :20].astype(float)
        val = float((np.outer(p, p) * np.exp(lam * s)).sum())
        assert abs(val - 1.0) < 1e-6

    def test_non_negative_expectation_rejected(self):
        silly = SubstitutionMatrix("silly", np.ones((25, 25), dtype=np.int8))
        with pytest.raises(ValueError, match="non-negative expected"):
            karlin_lambda(silly)


class TestParams:
    def test_ungapped_params_entropy_positive(self):
        p = ungapped_params(BLOSUM62)
        assert p.h > 0
        assert 0 < p.k < 1

    def test_gapped_lookup(self):
        p = gapped_params("BLOSUM62", 11, 1)
        assert p.lam == pytest.approx(0.267)
        assert p.k == pytest.approx(0.041)

    def test_gapped_lookup_case_insensitive(self):
        assert gapped_params("blosum62", 11, 1) is GAPPED_PARAMS[("BLOSUM62", 11, 1)]

    def test_unknown_combo_falls_back(self):
        p = gapped_params("BLOSUM62", 99, 9)
        assert p is GAPPED_PARAMS[("BLOSUM62", 11, 1)]

    def test_bit_score_formula(self):
        p = KarlinParams(lam=0.267, k=0.041)
        bits = p.bit_score(100)
        expected = (0.267 * 100 - math.log(0.041)) / math.log(2)
        assert bits == pytest.approx(expected)


class TestEvalue:
    PARAMS = GAPPED_PARAMS[("BLOSUM62", 11, 1)]

    def test_monotone_decreasing_in_score(self):
        es = [evalue(s, 300, 10**7, self.PARAMS) for s in (30, 50, 80, 120)]
        assert es == sorted(es, reverse=True)

    def test_monotone_increasing_in_space(self):
        assert evalue(60, 300, 10**8, self.PARAMS) > evalue(
            60, 300, 10**6, self.PARAMS
        )

    def test_search_space_edge_correction(self):
        raw = 300 * 10**6
        eff = effective_search_space(300, 10**6, self.PARAMS)
        assert 0 < eff < raw

    def test_tiny_sequences_floor(self):
        assert effective_search_space(2, 3, self.PARAMS) >= 1.0

    def test_zero_space(self):
        assert effective_search_space(0, 100, self.PARAMS) == 0.0

    def test_typical_hit_is_significant(self):
        # A raw score of 150 in a 300×10^7 search is overwhelmingly
        # significant at E=1e-3 — sanity anchor for pipeline cutoffs.
        assert evalue(150, 300, 10**7, self.PARAMS) < 1e-3
