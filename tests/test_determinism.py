"""Runtime determinism sanitizer tests: digests, manifests, pipeline wiring."""

import json
import pathlib

import numpy as np

from repro.analysis.determinism import (
    DetsanRecorder,
    activate,
    active,
    detsan_enabled,
    diff_manifests,
    digest_arrays,
    record_arrays,
    verify_pipeline_determinism,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import SeedComparisonPipeline
from repro.extend.ungapped import UngappedHits

REPO = pathlib.Path(__file__).resolve().parents[1]
QUERIES = REPO / "examples" / "data" / "demo_proteins.fasta"
GENOME = REPO / "examples" / "data" / "demo_genome.fasta"


class TestDigests:
    def test_order_independent_is_permutation_invariant(self, rng):
        cols = [rng.integers(0, 1000, 64), rng.integers(0, 1000, 64)]
        perm = rng.permutation(64)
        d1 = digest_arrays(cols, order_sensitive=False)
        d2 = digest_arrays([c[perm] for c in cols], order_sensitive=False)
        assert d1 == d2

    def test_order_sensitive_detects_permutation(self, rng):
        cols = [np.arange(64), np.arange(64)]
        d1 = digest_arrays(cols, order_sensitive=True)
        d2 = digest_arrays([c[::-1].copy() for c in cols], order_sensitive=True)
        assert d1 != d2

    def test_multiset_digest_counts_duplicates(self):
        once = digest_arrays([np.array([1, 2])], order_sensitive=False)
        twice = digest_arrays([np.array([1, 2, 2])], order_sensitive=False)
        assert once != twice

    def test_float_columns_are_bit_exact(self):
        pos = digest_arrays([np.array([0.0])], order_sensitive=True)
        neg = digest_arrays([np.array([-0.0])], order_sensitive=True)
        assert pos != neg  # bit-cast, not value-cast

    def test_empty_input(self):
        digest, n = digest_arrays([], order_sensitive=False)
        assert n == 0 and digest == f"{0:032x}"


class TestRecorder:
    def test_inactive_recording_is_a_noop(self):
        assert active() is None
        record_arrays("stage", [np.array([1])], order_sensitive=True)
        assert active() is None

    def test_activate_scopes_the_recorder(self):
        rec = DetsanRecorder(meta={"workers": 1})
        with activate(rec):
            assert active() is rec
            record_arrays("s", [np.array([1, 2])], order_sensitive=True)
        assert active() is None
        manifest = rec.manifest()
        assert manifest["version"] == 1
        assert manifest["meta"] == {"workers": 1}
        assert manifest["stages"]["s"]["n"] == 2

    def test_activate_none_is_transparent(self):
        with activate(None):
            assert active() is None

    def test_manifest_roundtrips_through_json(self, tmp_path):
        rec = DetsanRecorder()
        rec.record_stage("s", "ab" * 16, 3)
        rec.record_detail("shard", shard=0, via="pool")
        out = tmp_path / "m.json"
        rec.write(out)
        assert json.loads(out.read_text()) == rec.manifest()


class TestDiff:
    def test_identical_manifests_diff_empty(self):
        a = {"stages": {"s": {"digest": "x", "n": 1}}}
        assert diff_manifests(a, a) == []

    def test_digest_mismatch_is_reported(self):
        a = {"stages": {"s": {"digest": "a" * 32, "n": 1}}}
        b = {"stages": {"s": {"digest": "b" * 32, "n": 1}}}
        (line,) = diff_manifests(a, b)
        assert line.startswith("s:")

    def test_missing_stage_is_reported(self):
        a = {"stages": {"s": {"digest": "x", "n": 1}}}
        b = {"stages": {}}
        (line,) = diff_manifests(a, b)
        assert "only in the first" in line

    def test_detail_is_not_compared(self):
        a = {"stages": {}, "detail": [{"event": "shard", "shard": 0}]}
        b = {"stages": {}, "detail": []}
        assert diff_manifests(a, b) == []


class TestPipelineWiring:
    def test_env_flag_populates_last_detsan(self, small_banks, monkeypatch):
        monkeypatch.setenv("REPRO_DETSAN", "1")
        assert detsan_enabled()
        pipe = SeedComparisonPipeline(PipelineConfig())
        pipe.compare_banks(*small_banks)
        manifest = pipe.last_detsan
        assert manifest is not None
        assert set(manifest["stages"]) == {
            "step1.index",
            "step2.survivors",
            "step2.merged",
            "step3.alignments",
        }
        assert any(d["event"] == "shard" for d in manifest["detail"])

    def test_detsan_out_writes_manifest(self, small_banks, monkeypatch, tmp_path):
        out = tmp_path / "detsan.json"
        monkeypatch.setenv("REPRO_DETSAN", "1")
        monkeypatch.setenv("REPRO_DETSAN_OUT", str(out))
        pipe = SeedComparisonPipeline(PipelineConfig())
        pipe.compare_banks(*small_banks)
        assert json.loads(out.read_text()) == pipe.last_detsan

    def test_disabled_by_default(self, small_banks, monkeypatch):
        monkeypatch.delenv("REPRO_DETSAN", raising=False)
        pipe = SeedComparisonPipeline(PipelineConfig())
        pipe.compare_banks(*small_banks)
        assert pipe.last_detsan is None

    def test_blast_family_search_exposes_manifest(self, small_banks, monkeypatch):
        from repro.core.modes import BlastFamilySearch

        monkeypatch.setenv("REPRO_DETSAN", "1")
        search = BlastFamilySearch(PipelineConfig(), seg=None)
        assert search.last_detsan is None
        search.blastp(*small_banks)
        assert search.last_detsan is not None
        assert "step2.merged" in search.last_detsan["stages"]


class TestVerify:
    def test_worker_counts_agree_on_examples_data(self):
        ok, manifests, diffs = verify_pipeline_determinism(
            str(QUERIES), str(GENOME), worker_counts=(1, 2)
        )
        assert ok, diffs
        assert [m["meta"]["workers"] for m in manifests] == [1, 2]
        stages = manifests[0]["stages"]
        assert stages["step2.survivors"]["n"] == stages["step2.merged"]["n"]
        assert stages["step3.alignments"]["n"] > 0

    def test_seeded_ordering_bug_breaks_the_merged_digest(self, small_banks):
        """The runtime half of the acceptance gate.

        A step-2 engine that returns the right survivor *set* in the wrong
        *order* (the bug RC100 flags statically) must keep the
        order-independent digest and break the order-sensitive one.
        """
        from repro.core.executor import ShardedStep2Executor

        # An exact-seed config with a low threshold so the small random
        # banks actually produce step-2 survivors to scramble.
        config = PipelineConfig.exact_seed(3, flank=8, ungapped_threshold=20)

        def good_step2(index):
            return ShardedStep2Executor(
                config.ungapped_config(), workers=1
            ).run(index)

        def scrambled_step2(index):
            hits = good_step2(index)
            return UngappedHits(
                hits.offsets0[::-1].copy(),
                hits.offsets1[::-1].copy(),
                hits.scores[::-1].copy(),
                hits.stats,
            )

        manifests = []
        for step2 in (good_step2, scrambled_step2):
            rec = DetsanRecorder()
            with activate(rec):
                SeedComparisonPipeline(config, step2=step2).compare_banks(
                    *small_banks
                )
            manifests.append(rec.manifest())
        assert manifests[0]["stages"]["step2.merged"]["n"] > 0
        diffs = diff_manifests(*manifests)
        assert any(line.startswith("step2.merged:") for line in diffs)
        assert not any(line.startswith("step2.survivors:") for line in diffs)
