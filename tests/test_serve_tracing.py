"""Per-request observability through the real serve stack.

The tentpole contract under test: every request that reaches the
dispatcher yields one complete span tree — one ``serve.request`` root,
zero orphans, worker spans re-parented under their shard spans — joined
to a flight record and to the client's view by one request id, and that
contract survives the nastiest path we have: every warm worker killed
between admission and dispatch (``POOL_DEATH``), forcing the
supervisor's submit-time retry and a pool rebuild mid-request.
"""

import json
import threading

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.faults import FaultKind, FaultPlan, FaultSpec
from repro.obs.export import (
    validate_flight_records,
    validate_request_trace,
    validate_serve_metrics,
)
from repro.obs import trace as obstrace
from repro.seqs.sequence import BankBuilder
from repro.serve import SearchHTTPServer, SearchService, ServiceConfig
from repro.serve.client import run_load, search_request
from repro.serve.top import main as top_main

AA = "ACDEFGHIKLMNPQRSTVWY"


def _rand_seq(rng, n):
    return "".join(AA[i] for i in rng.integers(0, 20, n))


@pytest.fixture(scope="module")
def serve_workload():
    rng = np.random.default_rng(11)
    motif = _rand_seq(rng, 60)
    rb = BankBuilder()
    for i in range(10):
        rb.add(f"res{i}", _rand_seq(rng, 50) + motif + _rand_seq(rng, 50))
    qb = BankBuilder()
    for i in range(3):
        qb.add(f"qry{i}", _rand_seq(rng, 20) + motif + _rand_seq(rng, 20))
    return qb.build(), rb.build()


def make_service(serve_workload, fault_plan=None, **service_kw):
    queries, resident = serve_workload
    service_kw.setdefault("workers", 2)
    svc = SearchService(
        PipelineConfig(workers=2),
        resident,
        ServiceConfig(**service_kw),
        fault_plan=fault_plan,
    )
    svc.start(warm=True)
    return svc, queries


def span_forest_shape(spans):
    """(root names, orphan count) of an exported span list."""
    ids = {s["span_id"] for s in spans}
    roots = [s["name"] for s in spans if s["parent_id"] is None]
    orphans = [
        s for s in spans if s["parent_id"] is not None and s["parent_id"] not in ids
    ]
    return roots, len(orphans)


def wait_for_broken_pool(svc, timeout=10.0):
    """Block until the killed pool's executor has noticed it is broken.

    Submitting before the executor flips ``_broken`` would fail on the
    futures instead of at submit — a different (also handled) path; the
    deterministic test wants the submit-time one.
    """
    deadline = obstrace.clock() + timeout
    while obstrace.clock() < deadline:
        pool = svc.pool._pool
        if pool is None or getattr(pool, "_broken", False):
            return
        threading.Event().wait(timeout=0.05)
    raise AssertionError("pool never reported itself broken")


class TestSpanTreePerRequest:
    def test_complete_span_tree_and_flight_record(self, serve_workload):
        svc, queries = make_service(serve_workload)
        try:
            out = svc.submit(queries, request_id="req-base")
            assert out["code"] == 200 and out["request_id"] == "req-base"
            doc = svc.traces.get("req-base")
            assert doc is not None
            assert validate_request_trace(doc) == []
            assert doc["trace_id"] and doc["status"] == "ok"
            roots, orphans = span_forest_shape(doc["spans"])
            assert roots == ["serve.request"] and orphans == 0
            names = {s["name"] for s in doc["spans"]}
            assert {"step1.index", "step2.ungapped", "step2.shard",
                    "step2.worker", "step3.gapped"} <= names
            # Worker spans crossed the process boundary and re-parented
            # under their shard spans, each carrying the request id.
            shard_ids = {
                s["span_id"] for s in doc["spans"] if s["name"] == "step2.shard"
            }
            workers = [s for s in doc["spans"] if s["name"] == "step2.worker"]
            assert workers and all(s["parent_id"] in shard_ids for s in workers)
            assert all(
                s["attributes"]["request_id"] == "req-base"
                for s in doc["spans"]
                if s["name"] == "step2.shard"
            )
            record = svc.flight.find("req-base")
            assert record is not None
            assert record["trace_id"] == doc["trace_id"]
            assert record["status"] == "ok" and record["retry_events"] == 0
            breakdown = record["breakdown"]
            assert breakdown["total"] > 0
            assert {"queue", "step1", "step2", "merge", "dispatch"} <= set(breakdown)
            assert validate_serve_metrics(svc.metrics_text()) == []
        finally:
            assert svc.drain(timeout=30)

    def test_pool_death_retry_keeps_one_tree(self, serve_workload):
        svc, queries = make_service(serve_workload)
        try:
            warm = svc.submit(queries)
            assert warm["code"] == 200
            svc.pool.kill_workers()
            wait_for_broken_pool(svc)
            out = svc.submit(queries, request_id="req-retry")
            assert out["code"] == 200 and not out["degraded"]
            doc = svc.traces.get("req-retry")
            assert doc is not None and validate_request_trace(doc) == []
            roots, orphans = span_forest_shape(doc["spans"])
            assert roots == ["serve.request"] and orphans == 0
            # The rebuilt pool's worker spans still adopt under the same
            # request root — no second tree, no strays.
            shard_ids = {
                s["span_id"] for s in doc["spans"] if s["name"] == "step2.shard"
            }
            workers = [s for s in doc["spans"] if s["name"] == "step2.worker"]
            assert len(workers) >= 1
            assert all(s["parent_id"] in shard_ids for s in workers)
            # Exactly one submit-time retry event, attributed to this
            # request, on a span inside the tree.
            retries = [
                (s["name"], e)
                for s in doc["spans"]
                for e in s["events"]
                if e["name"] == "step2.retry"
            ]
            assert len(retries) == 1
            assert retries[0][1]["reason"] == "pool-broken"
            assert retries[0][1]["request_id"] == "req-retry"
            record = svc.flight.find("req-retry")
            assert record is not None
            assert record["status"] == "ok"
            assert record["retry_events"] == 1
        finally:
            assert svc.drain(timeout=30)

    def test_tracing_off_keeps_flight_records(self, serve_workload):
        svc, queries = make_service(serve_workload, tracing=False)
        try:
            out = svc.submit(queries, request_id="req-dark")
            assert out["code"] == 200 and out["request_id"] == "req-dark"
            assert svc.traces.get("req-dark") is None
            record = svc.flight.find("req-dark")
            assert record is not None and record["status"] == "ok"
        finally:
            assert svc.drain(timeout=30)


class TestShedDrainSpool:
    def test_injected_shed_is_recorded_with_id(self, serve_workload):
        plan = FaultPlan(
            (FaultSpec(FaultKind.QUEUE_OVERFLOW, request=0),), seed=5
        )
        svc, queries = make_service(serve_workload, fault_plan=plan)
        try:
            out = svc.submit(queries, request_id="req-shed")
            assert out["code"] == 429 and out["request_id"] == "req-shed"
            record = svc.flight.find("req-shed")
            assert record is not None
            assert record["status"] == "shed"
            assert record["shed_reason"] == "injected"
            assert record["retry_after"] == out["retry_after"]
            ok = svc.submit(queries, request_id="req-after-shed")
            assert ok["code"] == 200
        finally:
            assert svc.drain(timeout=30)

    def test_trace_dir_spools_traces_and_drain_dumps_flight(
        self, serve_workload, tmp_path
    ):
        svc, queries = make_service(serve_workload, trace_dir=str(tmp_path))
        try:
            out = svc.submit(queries, request_id="req-spool")
            assert out["code"] == 200
        finally:
            assert svc.drain(timeout=30)
        spooled = list(tmp_path.glob("trace-*-req-spool.json"))
        assert len(spooled) == 1
        assert validate_request_trace(json.loads(spooled[0].read_text())) == []
        dump = tmp_path / "flight_records.json"
        assert dump.exists()
        doc = json.loads(dump.read_text())
        assert validate_flight_records(doc) == []
        assert any(r["request_id"] == "req-spool" for r in doc["records"])

    def test_draining_rejection_carries_id(self, serve_workload):
        svc, queries = make_service(serve_workload)
        assert svc.drain(timeout=30)
        out = svc.submit(queries, request_id="req-late")
        assert out["code"] == 503 and out["request_id"] == "req-late"
        record = svc.flight.find("req-late")
        assert record is not None and record["status"] == "draining"


@pytest.fixture(scope="module")
def http_server(serve_workload):
    queries, resident = serve_workload
    svc = SearchService(
        PipelineConfig(workers=2), resident, ServiceConfig(workers=2)
    )
    svc.start(warm=True)
    server = SearchHTTPServer(("127.0.0.1", 0), svc)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        daemon=True,
    )
    thread.start()
    try:
        yield server.server_address[1], svc, queries
    finally:
        server.shutdown()
        server.server_close()
        svc.drain(timeout=30)
        thread.join(timeout=10)


def http_get(port, path, headers=None):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        body = response.read()
        return response.status, dict(response.headers), body
    finally:
        conn.close()


class TestHttpIdEcho:
    def test_wellformed_id_is_echoed_everywhere(self, http_server):
        port, _, _ = http_server
        for path in ("/healthz", "/readyz", "/metrics", "/nonsense"):
            _, headers, _ = http_get(
                port, path, headers={"X-Request-Id": "probe-7"}
            )
            assert headers["X-Request-Id"] == "probe-7", path

    def test_malformed_id_is_replaced(self, http_server):
        port, _, _ = http_server
        _, headers, _ = http_get(
            port, "/healthz", headers={"X-Request-Id": "not ok/../"}
        )
        assert headers["X-Request-Id"] != "not ok/../"
        assert len(headers["X-Request-Id"]) == 32

    def test_search_roundtrip_joins_client_and_server(self, http_server):
        port, svc, queries = http_server
        workload = [(queries.names[i], queries[i].text()) for i in range(3)]
        out = search_request("127.0.0.1", port, workload, request_id="join-1")
        assert out["http_status"] == 200
        assert out["request_id"] == "join-1"
        assert out["request_id_header"] == "join-1"
        assert out["request_id"] == out["request_id_header"]
        # The id joins to the server-side trace and flight record.
        status, _, body = http_get(port, "/debug/trace/join-1")
        assert status == 200
        doc = json.loads(body)
        assert validate_request_trace(doc) == []
        assert doc["request_id"] == "join-1"
        status, _, body = http_get(port, "/debug/requests?limit=4")
        assert status == 200
        flight = json.loads(body)
        assert validate_flight_records(flight) == []
        assert "slo" in flight
        assert any(r["request_id"] == "join-1" for r in flight["records"])

    def test_malformed_post_gets_an_id_too(self, http_server):
        port, _, _ = http_server
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            conn.request(
                "POST", "/search", body=b"not json",
                headers={"X-Request-Id": "bad-body", "Content-Length": "8"},
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 400
            assert response.headers["X-Request-Id"] == "bad-body"
        finally:
            conn.close()

    def test_debug_endpoints_reject_bad_input(self, http_server):
        port, _, _ = http_server
        status, _, _ = http_get(port, "/debug/requests?limit=banana")
        assert status == 400
        status, _, _ = http_get(port, "/debug/trace/absent-id")
        assert status == 404
        # No profiler wired into this server: 503, not a crash.
        status, _, _ = http_get(port, "/debug/profile")
        assert status == 503

    def test_run_load_reports_zero_id_mismatches(self, http_server):
        port, _, queries = http_server
        workload = [(queries.names[i], queries[i].text()) for i in range(3)]
        summary = run_load("127.0.0.1", port, [workload] * 4, concurrency=2)
        assert summary["errors"] == 0
        assert summary["id_mismatches"] == 0
        assert all(
            r["request_id_header"] == r["request_id"] for r in summary["results"]
        )

    def test_serve_top_once_renders_a_frame(self, http_server, capsys):
        port, _, _ = http_server
        assert top_main(["--port", str(port), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro-serve-top" in out
        assert "breaker closed" in out
        assert "first sample" in out
