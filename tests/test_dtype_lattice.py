"""Property-based tests (hypothesis) on the dtype/value-range lattice.

The RC200 proof rests on these algebraic guarantees: ``join`` is a least
upper bound, ``widen`` over-approximates it and stabilises, and the
interval arithmetic is sound (real results land inside abstract ranges).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dtypes import (
    DTYPE_BOUNDS,
    TOP_RANGE,
    AbstractValue,
    ValueRange,
    dtype_bounds,
    promote,
)

bound = st.one_of(st.none(), st.integers(-1_000, 1_000))


@st.composite
def ranges(draw):
    lo, hi = draw(bound), draw(bound)
    if lo is not None and hi is not None and lo > hi:
        lo, hi = hi, lo
    return ValueRange(lo, hi)


@st.composite
def nonempty_ranges_with_point(draw):
    """A finite-or-open range plus one concrete int inside it."""
    rng = draw(ranges())
    lo = rng.lo if rng.lo is not None else -2_000
    hi = rng.hi if rng.hi is not None else 2_000
    x = draw(st.integers(lo, hi))
    return rng, x


HYPO = settings(max_examples=200, deadline=None)


class TestJoin:
    @given(ranges(), ranges())
    @HYPO
    def test_join_is_upper_bound_and_commutative(self, a, b):
        j = a.join(b)
        assert j.contains(a)
        assert j.contains(b)
        assert j == b.join(a)

    @given(ranges())
    @HYPO
    def test_join_is_idempotent(self, a):
        assert a.join(a) == a

    @given(ranges(), ranges(), ranges())
    @HYPO
    def test_join_is_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(ranges())
    @HYPO
    def test_top_absorbs(self, a):
        assert a.join(TOP_RANGE) == TOP_RANGE
        assert TOP_RANGE.contains(a)

    @given(ranges())
    @HYPO
    def test_contains_is_reflexive(self, a):
        assert a.contains(a)


class TestWiden:
    @given(ranges(), ranges())
    @HYPO
    def test_widen_over_approximates_join(self, a, b):
        assert a.widen(b).contains(a.join(b))

    @given(ranges(), ranges())
    @HYPO
    def test_widen_covers_both_operands(self, a, b):
        w = a.widen(b)
        assert w.contains(a)
        assert w.contains(b)

    @given(ranges(), st.lists(ranges(), min_size=1, max_size=8))
    @HYPO
    def test_widening_chain_stabilises(self, start, steps):
        # Each strict growth drops at least one bound to infinity, so any
        # ascending chain changes at most twice (once per side).
        current, changes = start, 0
        for step in steps:
            widened = current.widen(step)
            assert widened.contains(current)
            if widened != current:
                changes += 1
            current = widened
        assert changes <= 2

    @given(ranges(), ranges())
    @HYPO
    def test_widened_bounds_come_from_self_or_infinity(self, a, b):
        w = a.widen(b)
        assert w.lo in (a.lo, None)
        assert w.hi in (a.hi, None)


class TestArithmeticSoundness:
    """Concrete results must land inside the abstract result range."""

    @given(nonempty_ranges_with_point(), nonempty_ranges_with_point())
    @HYPO
    def test_add_sub_mul(self, ax, by):
        a, x = ax
        b, y = by
        assert a.add(b).contains(ValueRange.const(x + y))
        assert a.sub(b).contains(ValueRange.const(x - y))
        assert a.mul(b).contains(ValueRange.const(x * y))

    @given(nonempty_ranges_with_point())
    @HYPO
    def test_neg_and_abs(self, ax):
        a, x = ax
        assert a.neg().contains(ValueRange.const(-x))
        assert a.abs().contains(ValueRange.const(abs(x)))

    @given(nonempty_ranges_with_point())
    @HYPO
    def test_max_abs_dominates_members(self, ax):
        a, x = ax
        m = a.max_abs()
        if m is not None:
            assert abs(x) <= m

    @given(ranges(), st.sampled_from(sorted(DTYPE_BOUNDS)))
    @HYPO
    def test_clip_lands_inside_dtype_bounds(self, a, name):
        bounds = dtype_bounds(name)
        assert bounds is not None
        clipped = a.clip(bounds)
        assert ValueRange(*bounds).contains(clipped)


class TestAbstractValue:
    @given(ranges(), ranges())
    @HYPO
    def test_join_covers_ranges(self, ra, rb):
        a = AbstractValue.array("int32", ra)
        b = AbstractValue.array("int32", rb)
        j = a.join(b)
        assert j.kind == "array"
        assert j.dtype == "int32"
        assert j.range.contains(ra)
        assert j.range.contains(rb)

    @given(ranges(), ranges())
    @HYPO
    def test_dtype_mismatch_forgets_dtype_keeps_range(self, ra, rb):
        a = AbstractValue.array("int16", ra)
        b = AbstractValue.array("int32", rb)
        j = a.join(b)
        assert j.dtype is None
        assert j.range.contains(ra.join(rb))

    @given(ranges())
    @HYPO
    def test_unknown_absorbs(self, ra):
        a = AbstractValue.array("int32", ra)
        assert a.join(AbstractValue.unknown()).is_unknown
        assert AbstractValue.unknown().join(a).is_unknown

    @given(ranges(), ranges())
    @HYPO
    def test_widen_over_approximates_join(self, ra, rb):
        a = AbstractValue.scalar(ra)
        b = AbstractValue.scalar(rb)
        assert a.widen(b).range.contains(a.join(b).range)


def test_promote_is_symmetric_and_total_on_table():
    names = sorted(DTYPE_BOUNDS) + ["float32", "float64"]
    for a, b in itertools.product(names, names):
        assert promote(a, b) == promote(b, a)
        if a == b:
            assert promote(a, b) == a


def test_promotion_result_contains_both_integer_ranges():
    ints = [n for n in DTYPE_BOUNDS if n != "bool"]
    for a, b in itertools.product(ints, ints):
        out = promote(a, b)
        assert out is not None
        out_bounds = dtype_bounds(out)
        if out_bounds is None:
            # Mixed signedness with no common signed container promotes
            # to float64 (NEP 50): int64/uint64 is the only such pair.
            assert out == "float64"
            continue
        for name in (a, b):
            lo, hi = dtype_bounds(name)
            assert out_bounds[0] <= lo and hi <= out_bounds[1]
