"""End-to-end accelerated pipeline tests (host + RASC-100)."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import SeedComparisonPipeline
from repro.psc.schedule import PscArrayConfig
from repro.rasc.accelerated import AcceleratedPipeline


def alignments_key(report):
    return [
        (a.seq0_name, a.seq1_name, a.start0, a.end0, a.start1, a.end1, a.raw_score)
        for a in report
    ]


class TestFunctionalEquivalence:
    def test_single_fpga_matches_software(self, planted_workload):
        """The paper's central functional claim: deporting step 2 to the
        accelerator changes nothing about the results."""
        queries, genome, _ = planted_workload
        sw = SeedComparisonPipeline().compare_with_genome(queries, genome)
        hw = AcceleratedPipeline().run(queries, genome)
        assert alignments_key(sw) == alignments_key(hw.report)

    def test_dual_fpga_matches_software(self, planted_workload):
        queries, genome, _ = planted_workload
        sw = SeedComparisonPipeline().compare_with_genome(queries, genome)
        hw = AcceleratedPipeline().run_dual(queries, genome)
        assert sorted(alignments_key(sw)) == sorted(alignments_key(hw.report))


class TestTiming:
    def test_timing_decomposition(self, planted_workload):
        queries, genome, _ = planted_workload
        res = AcceleratedPipeline().run(queries, genome)
        assert res.accel_seconds > 0
        assert res.host_seconds.step1 > 0
        assert res.total_seconds == pytest.approx(
            res.host_seconds.step1 + res.accel_seconds + res.host_seconds.step3
        )
        f = res.step_fractions()
        assert abs(sum(f) - 1.0) < 1e-9

    def test_more_pes_not_slower_at_fixed_slot_count(self, planted_workload):
        # At a fixed register-barrier depth, growing the array can only
        # help.  (With more slots, a starved workload can actually get
        # *slower* — the paper's small-bank effect — so slot count is held
        # constant here.)
        queries, genome, _ = planted_workload
        cfg = PipelineConfig()
        t = {}
        for pes in (16, 64):
            psc = PscArrayConfig(
                n_pes=pes,
                slot_size=pes // 4,
                window=cfg.window,
                threshold=cfg.ungapped_threshold,
            )
            res = AcceleratedPipeline(cfg, psc).run(queries, genome)
            t[pes] = res.accel_seconds
        assert t[64] <= t[16]

    def test_dual_compute_faster_on_large_work(self, planted_workload):
        queries, genome, _ = planted_workload
        pipe = AcceleratedPipeline()
        single = pipe.run(queries, genome)
        dual = pipe.run_dual(queries, genome)
        # Dual must not be slower than single on the accelerator side
        # beyond I/O noise.
        assert dual.accel_seconds <= single.accel_seconds * 1.25


class TestConfigValidation:
    def test_window_mismatch_rejected(self):
        cfg = PipelineConfig(flank=12)
        bad_psc = PscArrayConfig(window=10)
        with pytest.raises(ValueError, match="window"):
            AcceleratedPipeline(cfg, bad_psc)

    def test_default_psc_derived_from_pipeline(self):
        cfg = PipelineConfig(flank=9, ungapped_threshold=31)
        pipe = AcceleratedPipeline(cfg)
        assert pipe.psc_config.window == cfg.window
        assert pipe.psc_config.threshold == 31
