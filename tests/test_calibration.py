"""Karlin-Altschul empirical calibration tests."""

import numpy as np
import pytest

from repro.eval.calibration import (
    ScoreSample,
    empirical_exceedance,
    evalue_calibration,
    fit_lambda,
    sample_gapped_scores,
    sample_ungapped_scores,
)
from repro.extend.stats import gapped_params, ungapped_params
from repro.seqs.matrices import BLOSUM62


@pytest.fixture(scope="module")
def ungapped_sample():
    return sample_ungapped_scores(
        np.random.default_rng(11), n_pairs=250, m=150, n=150
    )


class TestSampling:
    def test_scores_positive_and_plausible(self, ungapped_sample):
        s = ungapped_sample.scores
        assert (s > 0).all()
        # Random 150x150 BLOSUM62 optima live in the 15-60 raw-score band.
        assert 10 < s.mean() < 60

    def test_exceedance_monotone(self, ungapped_sample):
        thresholds = np.arange(10, 60)
        p = ungapped_sample.exceedance(thresholds)
        assert (np.diff(p) <= 0).all()
        assert 0 <= p[-1] <= p[0] <= 1

    def test_kadane_sampler_matches_bruteforce(self):
        """Vectorised per-diagonal Kadane equals a brute-force scan."""
        rng = np.random.default_rng(0)
        sample = sample_ungapped_scores(rng, n_pairs=3, m=25, n=30)
        rng = np.random.default_rng(0)  # same sequence stream
        from repro.seqs.generate import random_protein

        sub = BLOSUM62.scores.astype(int)
        for k in range(3):
            a = random_protein(rng, 25)
            b = random_protein(rng, 30)
            best = 0
            for d in range(-24, 30):
                i, j = max(0, -d), max(0, d)
                run = 0
                while i < 25 and j < 30:
                    run = max(0, run + sub[a[i], b[j]])
                    best = max(best, run)
                    i += 1
                    j += 1
            assert int(sample.scores[k]) == best


class TestLambdaFit:
    def test_recovers_published_lambda(self, ungapped_sample):
        lam = fit_lambda(ungapped_sample)
        assert abs(lam - 0.3176) / 0.3176 < 0.2

    def test_degenerate_sample_rejected(self):
        s = ScoreSample(np.full(50, 30, dtype=np.int64), 100, 100)
        with pytest.raises(ValueError):
            fit_lambda(s)


class TestCalibrationReport:
    def test_ungapped_curve_agreement(self, ungapped_sample):
        rep = evalue_calibration(ungapped_sample, ungapped_params(BLOSUM62))
        assert rep.lambda_relative_error < 0.2
        # Gumbel prediction tracks the empirical curve closely.
        assert rep.max_abs_error < 0.15

    def test_gapped_regime(self):
        sample = sample_gapped_scores(
            np.random.default_rng(3), n_pairs=50, m=100, n=100
        )
        rep = evalue_calibration(sample, gapped_params("BLOSUM62", 11, 1))
        # Gapped statistics at short lengths carry strong edge effects;
        # the check is a sanity band, not precision.
        assert 0.1 < rep.fitted_lambda < 0.45
        assert rep.max_abs_error < 0.6

    def test_prediction_direction(self, ungapped_sample):
        """Higher scores are rarer in both curves."""
        thresholds = np.arange(20, 50)
        emp, pred = empirical_exceedance(
            ungapped_sample, ungapped_params(BLOSUM62), thresholds
        )
        assert (np.diff(pred) < 0).all()
