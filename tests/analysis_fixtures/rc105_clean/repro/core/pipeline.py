"""RC105 clean twin: timing routed through repro.obs; time.sleep is fine."""

import time

from ..obs import trace


def run_step(step: object) -> float:
    timer = trace.Timer()
    with trace.span("step"), timer:
        time.sleep(0.0)
    return timer.seconds
