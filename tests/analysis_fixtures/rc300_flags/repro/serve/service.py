"""RC300 fixture: the drain race, distilled.

The dispatcher thread mutates ``_busy`` bare while the drain path samples
it under a lock the writer never takes — the lockset intersection over
the field's accesses is empty, so a ticket can be invisible (dequeued,
``_busy`` not yet observed) at the exact moment drain declares idle.
"""

import threading


class Service:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._busy = False
        self._thread = threading.Thread(target=self._dispatch_loop, daemon=True)
        self._thread.start()

    def _dispatch_loop(self) -> None:
        while True:
            self._busy = True  # write: no lock held
            self._busy = False

    def drain(self) -> bool:
        with self._lock:
            return not self._busy  # read under a lock the writer ignores
