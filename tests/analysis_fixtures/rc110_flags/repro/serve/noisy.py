"""RC110 fixture: ad-hoc stdout/stderr output in the serving layer."""

import sys


def handle(request: dict) -> dict:
    print("handling", request)  # invisible to operators, corrupts pipes
    return {"ok": True}


def warn(message: str) -> None:
    sys.stderr.write(f"warning: {message}\n")  # no level, no timestamp


def report(message: str) -> None:
    sys.stdout.write(message + "\n")  # interleaves with CLI JSON


class Dispatcher:
    def tick(self) -> None:
        print("tick")  # methods are not main() either
