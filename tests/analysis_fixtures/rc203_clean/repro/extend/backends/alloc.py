"""Clean twin: monotone self scratch, sliced per batch."""

import numpy as np

from .registry import register_backend


class ScratchKernel:
    def __init__(self, config):
        self._config = config
        self._out = np.empty(0, dtype=np.int32)

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def _ensure(self, n):
        if n > self._out.shape[0]:
            self._out = np.empty(n, dtype=np.int32)

    def score(self, anchors0, anchors1):
        n = anchors0.shape[0]
        self._ensure(n)
        out = self._out[:n]
        out[:] = 0
        return out


@register_backend("alloc", score_dtype="int32")
def make_alloc(config):
    return ScratchKernel(config)
