"""Clean twin: declarations that match what the kernels actually do."""

import numpy as np

from .registry import register_backend


class HonestKernel:
    def __init__(self, config):
        self._config = config
        self._score = np.empty(0, dtype=np.int32)

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        score = self._score[: anchors0.shape[0]]
        score[:] = 0
        np.add(score, 1, out=score)
        return score


class CappedKernel:
    def __init__(self, config):
        self._config = config
        self._buf0 = None
        self._buf1 = None

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        idx = np.asarray(anchors0, dtype=np.int64)
        w0 = self._buf0[idx]  # noqa: RC201  (by-design gather, capped below)
        return w0


@register_backend("honest", score_dtype="int32")
def make_honest(config):
    return HonestKernel(config)


@register_backend("capped", score_dtype="int32", max_batch_pairs=1024)
def make_capped(config):
    return CappedKernel(config)
