"""RC300 clean twin: every ``_busy`` access holds the same lock."""

import threading


class Service:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._busy = False
        self._thread = threading.Thread(target=self._dispatch_loop, daemon=True)
        self._thread.start()

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                self._busy = True
            with self._lock:
                self._busy = False

    def drain(self) -> bool:
        with self._lock:
            return not self._busy
