"""RC104 clean fixture: only the supervisor module may sleep in a loop."""

import time


def dispatch_with_backoff(tries: int) -> int:
    for attempt in range(tries):
        try:
            return attempt
        except OSError:
            time.sleep(0.05 * 2**attempt)
    return -1
