"""RC104 clean fixture: a one-shot sleep outside any loop is fine."""

import time


def settle(delay: float) -> None:
    time.sleep(delay)
