"""RC304 clean twin: build the pool outside the lock, publish under it."""

import threading
from concurrent.futures import ProcessPoolExecutor


class Pool:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None

    def warm_up(self) -> None:
        pool = ProcessPoolExecutor(2)  # fork point: no lock held
        with self._lock:
            self._pool = pool
