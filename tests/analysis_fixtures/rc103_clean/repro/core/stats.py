"""RC103 clean fixture: reductions run over sorted sequences."""


def total_evalue(by_shard: dict) -> float:
    return sum(sorted(by_shard.values()))


def total_unique(scores: list) -> float:
    acc = 0.0
    for score in sorted(set(scores)):
        acc += score
    return acc
