"""RC101 clean fixture: worker state is passed explicitly, not module-global."""

from concurrent.futures import ProcessPoolExecutor


def _task(shard: int, scale: int) -> int:
    return shard * scale


def run(shards: list, scale: int) -> list:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(_task, s, scale) for s in shards]
        return [f.result(timeout=60.0) for f in futures]
