"""RC301 clean twin: one global acquisition order, no cycle."""

import threading


class Transfer:
    def __init__(self) -> None:
        self._accounts = threading.Lock()
        self._journal = threading.Lock()

    def debit(self) -> None:
        with self._accounts:
            with self._journal:
                pass

    def audit(self) -> None:
        with self._accounts:
            with self._journal:
                pass
