"""RC303 fixture: waits whose wake-up can never come, or is never
re-checked.

A fresh ``threading.Event()`` has no other reference — nothing can ever
``set()`` it, so the wait is a disguised (and probably unintended)
sleep.  A ``Condition.wait`` outside a while loop acts on spurious
wake-ups and missed predicates alike.
"""

import threading


class Waiter:
    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._ready = False

    def stall(self) -> None:
        threading.Event().wait(timeout=0.1)  # nothing can set this

    def take(self) -> bool:
        with self._cond:
            self._cond.wait(timeout=1.0)  # no predicate re-check
            return self._ready
