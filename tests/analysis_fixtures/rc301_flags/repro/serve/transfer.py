"""RC301 fixture: two locks acquired in opposite orders — a deadlock
waiting for the right interleaving."""

import threading


class Transfer:
    def __init__(self) -> None:
        self._accounts = threading.Lock()
        self._journal = threading.Lock()

    def debit(self) -> None:
        with self._accounts:
            with self._journal:
                pass

    def audit(self) -> None:
        with self._journal:
            with self._accounts:  # inverts debit()'s order
                pass
