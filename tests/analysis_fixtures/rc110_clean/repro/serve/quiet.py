"""RC110 twin: output goes through logging, main() keeps its stdout.

Also exercises the shapes RC110 must *not* flag: a ``print`` nested
inside ``main`` (helpers defined within the entry point inherit its
exemption), attribute calls that merely *end* in ``write`` (file
handles, wfile), and logging itself.
"""

import json
import logging

_log = logging.getLogger(__name__)


def handle(request: dict) -> dict:
    _log.debug("handling %s", request)
    return {"ok": True}


def persist(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload))  # a file handle, not sys.stdout


def main(argv: list[str] | None = None) -> int:
    summary = handle({})

    def render() -> None:
        print(json.dumps(summary))  # nested in main: still the CLI surface

    render()
    print("done")
    return 0
