"""RC105 fixture: raw monotonic-clock reads in an instrumented module."""

import time
from time import perf_counter


def run_step(step: object) -> float:
    t0 = time.perf_counter()
    t1 = time.monotonic()
    return perf_counter() - t0 + t1
