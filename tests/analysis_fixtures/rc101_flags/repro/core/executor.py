"""RC101 fixture: mutable module state in a worker-dispatched module."""

from concurrent.futures import ProcessPoolExecutor

_CACHE = {}


def _task(shard: int) -> int:
    _CACHE[shard] = shard
    return shard


def run(shards: list) -> list:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(_task, s) for s in shards]
        return [f.result(timeout=60.0) for f in futures]
