"""RC304 fixture: forking worker processes with a lock held.

A forked child inherits a copy of every held lock in whatever state it
was in — a lock held by another thread at fork time stays locked forever
in the child.  Pools must be built outside locks and only published
under them.
"""

import threading
from concurrent.futures import ProcessPoolExecutor


class Pool:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None

    def warm_up(self) -> None:
        with self._lock:
            self._pool = ProcessPoolExecutor(2)  # fork point, lock held
