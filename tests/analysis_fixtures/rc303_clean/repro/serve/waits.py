"""RC303 clean twin: the sanctioned wait idioms.

A module-level never-set event is the sanctioned bounded sleep; a
``Condition.wait`` belongs inside a while over its predicate; an
``Event.wait`` result is fine when it is consumed.
"""

import threading

#: Never set — its ``wait(timeout=...)`` is the sanctioned bounded sleep.
_SLEEP = threading.Event()


class Waiter:
    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._ready = False
        self._done = threading.Event()

    def stall(self) -> None:
        _SLEEP.wait(timeout=0.1)

    def take(self) -> bool:
        with self._cond:
            while not self._ready:
                self._cond.wait(timeout=1.0)
            return self._ready

    def finish(self, timeout: float) -> bool:
        if not self._done.wait(timeout=timeout):
            raise TimeoutError("waiter did not finish in time")
        return True

    def mark(self) -> None:
        self._done.set()
