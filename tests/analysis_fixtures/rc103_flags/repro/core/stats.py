"""RC103 fixture: float reductions over hash-ordered iterations."""


def total_evalue(by_shard: dict) -> float:
    return sum(by_shard.values())


def total_unique(scores: list) -> float:
    acc = 0.0
    for score in set(scores):
        acc += score
    return acc
