"""RC107 twin: every blocking call is bounded or non-blocking.

Also exercises the shapes RC107 must *not* flag: ``dict.get(key)``,
``str.join(parts)`` and ``Lock.acquire(False)`` carry positional
arguments, which is how ordinary non-queue calls look.
"""

import queue
import threading


def drain(work: "queue.Queue[int]", done: threading.Event) -> int | None:
    try:
        item = work.get(timeout=0.5)
    except queue.Empty:
        return None
    work.put(item, block=False)
    done.wait(timeout=1.0)
    return item


def lookups(table: dict[str, int], lock: threading.Lock) -> str:
    value = table.get("key")
    if lock.acquire(False):
        lock.release()
    return ",".join(str(v) for v in (value,))


def bounded_join(worker: threading.Thread, fut: object) -> object:
    worker.join(timeout=2.0)
    return fut.result(timeout=2.0)  # type: ignore[attr-defined]
