"""RC107 fixture: unbounded blocking calls in the serving layer."""

import queue
import threading


def wedge(work: "queue.Queue[int]", done: threading.Event) -> int:
    item = work.get()  # blocks forever when the producer is dead
    work.put(item)  # blocks forever when the queue is full
    done.wait()  # blocks forever when nobody sets it
    return item


def wedge_explicitly(work: "queue.Queue[int]") -> int:
    return work.get(timeout=None)  # spells "block forever" out loud


def wedge_join(worker: threading.Thread, fut: object) -> object:
    worker.join()  # a hung worker hangs the caller too
    return fut.result()  # type: ignore[attr-defined]
