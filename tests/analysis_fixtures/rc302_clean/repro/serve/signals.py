"""RC302 clean twin: flag-set plus thread-kick, nothing else."""

import logging
import signal
import threading

_log = logging.getLogger(__name__)
_stop = threading.Event()


def _drain() -> None:
    pass


def _handler(num: int, frame: object) -> None:
    _log.info("signal %d received, draining", num)
    _stop.set()
    threading.Thread(target=_drain, daemon=True).start()


def install() -> None:
    signal.signal(signal.SIGTERM, _handler)
