"""Mini config module: default window = w + 2n = 4 + 24 = 28."""


class UngappedConfig:
    w: int = 4
    n: int = 12

    @property
    def window(self) -> int:
        return self.w + 2 * self.n
