"""Clean twin: the narrow dtype holds the peak AND registers a probe."""

import numpy as np

from .registry import register_backend


def probe_window(config):
    return config.window <= 28


class TinyKernel:
    def __init__(self, config):
        self._config = config
        self._score = np.empty(0, dtype=np.int16)

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        score = self._score[: anchors0.shape[0]]
        score[:] = 0
        np.add(score, 1, out=score)
        return score


# Peak 140 fits int16, and the probe refuses configs the proof can't cover.
@register_backend("tiny16", score_dtype="int16", probe=probe_window)
def make_tiny(config):
    return TinyKernel(config)
