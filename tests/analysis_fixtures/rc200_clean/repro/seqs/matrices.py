"""Mini matrix module: bound = max(|entries|, |GAP_SCORE|) = 5."""

GAP_SCORE = -5

_TINY_TEXT = """
# tiny fixture matrix
   A  R
A  4 -1
R -1  5
"""
