"""RC100 clean fixture helper (same unordered return as the flag tree)."""


def completed_shards(results: dict) -> set:
    return set(results)
