"""RC100 clean fixture: the merge iterates sorted shard ids."""

from .partition import completed_shards


def merge_results(results: dict) -> list:
    merged = []
    for shard in sorted({int(k) for k in results}):
        merged.append(results[shard])
    return merged


def merge_remote(results: dict) -> list:
    merged = []
    # sorted() launders the helper's unordered return value.
    for shard in sorted(completed_shards(results)):
        merged.append(results[shard])
    return merged
