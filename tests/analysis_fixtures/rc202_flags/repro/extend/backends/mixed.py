"""RC202 violation: arithmetic mixing known array dtypes, result unpinned."""

import numpy as np

from .registry import register_backend


class MixedKernel:
    def __init__(self, config):
        self._config = config
        self._acc = np.empty(0, dtype=np.int16)
        self._bonus = np.empty(0, dtype=np.int32)

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        total = self._acc + self._bonus  # int16 + int32: promoted implicitly
        return total


@register_backend("mixed", score_dtype="int32")
def make_mixed(config):
    return MixedKernel(config)
