"""RC102 clean fixture: both release paths run in a finally block."""

from multiprocessing import shared_memory


def _release(shm) -> None:
    try:
        shm.close()
    finally:
        shm.unlink()


def publish(payload: bytes) -> str:
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    try:
        shm.buf[: len(payload)] = payload
        return shm.name
    finally:
        shm.close()
        shm.unlink()


def publish_via_helper(payload: bytes) -> str:
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    try:
        shm.buf[: len(payload)] = payload
        return shm.name
    finally:
        _release(shm)
