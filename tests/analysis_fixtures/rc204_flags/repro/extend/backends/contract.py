"""RC204 violations: metadata contradicting the kernel body."""

import numpy as np

from .registry import register_backend


class LyingKernel:
    def __init__(self, config):
        self._config = config
        self._score = np.empty(0, dtype=np.int32)

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        score = self._score[: anchors0.shape[0]]
        score[:] = 0
        np.add(score, 1, out=score)
        return score


class UncappedKernel:
    def __init__(self, config):
        self._config = config
        self._buf0 = None
        self._buf1 = None

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        idx = np.asarray(anchors0, dtype=np.int64)
        w0 = self._buf0[idx]  # noqa: RC201  (the gather is the point here)
        return w0


# Declares int16 while the kernel accumulates into int32 scratch.
@register_backend("liar", score_dtype="int16")
def make_liar(config):
    return LyingKernel(config)


# Materialises per-pair windows but declares no max_batch_pairs cap.
@register_backend("uncapped", score_dtype="int32")
def make_uncapped(config):
    return UncappedKernel(config)
