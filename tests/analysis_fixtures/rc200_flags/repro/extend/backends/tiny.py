"""Two RC200 violations: an overflowing dtype and a probe-less narrow one."""

import numpy as np

from .registry import register_backend


class TinyKernel:
    def __init__(self, config):
        self._config = config
        self._score = np.empty(0, dtype=np.int8)

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        score = self._score[: anchors0.shape[0]]
        score[:] = 0
        np.add(score, 1, out=score)
        return score


class NarrowKernel:
    def __init__(self, config):
        self._config = config
        self._score = np.empty(0, dtype=np.int16)

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        score = self._score[: anchors0.shape[0]]
        score[:] = 0
        np.add(score, 1, out=score)
        return score


# Overflow: peak 140 exceeds int8's [-128, 127].
@register_backend("tiny8", score_dtype="int8")
def make_tiny(config):
    return TinyKernel(config)


# Probe-less narrow dtype: 140 fits int16, but nothing guards other windows.
@register_backend("narrow16", score_dtype="int16")
def make_narrow(config):
    return NarrowKernel(config)
