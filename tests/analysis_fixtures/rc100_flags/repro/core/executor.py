"""RC100 fixture: hash-ordered values reach the merge."""

from .partition import completed_shards


def merge_results(results: dict) -> list:
    merged = []
    # Direct hazard: set iteration order is hash order.
    for shard in {int(k) for k in results}:
        merged.append(results[shard])
    return merged


def merge_remote(results: dict) -> list:
    merged = []
    # Cross-module hazard: the taint rides the helper's return value.
    for shard in completed_shards(results):
        merged.append(results[shard])
    return merged
