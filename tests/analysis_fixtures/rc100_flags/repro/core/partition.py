"""RC100 fixture helper: returns an unordered collection."""


def completed_shards(results: dict) -> set:
    return set(results)
