"""Clean twin: gathers land in reused scratch via np.take(..., out=)."""

import numpy as np

from .registry import register_backend


class GatherKernel:
    def __init__(self, config):
        self._config = config
        self._buf0 = None
        self._buf1 = None
        self._out = np.empty(0, dtype=np.int32)

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def _ensure(self, n):
        if n > self._out.shape[0]:
            self._out = np.empty(n, dtype=np.int32)

    def score(self, anchors0, anchors1):
        idx = np.asarray(anchors0, dtype=np.int64)
        self._ensure(idx.shape[0])
        out = self._out[: idx.shape[0]]
        np.take(self._buf0, idx, out=out)
        return out


@register_backend("gather", score_dtype="int32", max_batch_pairs=4096)
def make_gather(config):
    return GatherKernel(config)
