"""RC203 violation: a fresh output buffer allocated every batch."""

import numpy as np

from .registry import register_backend


class AllocKernel:
    def __init__(self, config):
        self._config = config

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        out = np.zeros(anchors0.shape[0], dtype=np.int32)
        return out


@register_backend("alloc", score_dtype="int32")
def make_alloc(config):
    return AllocKernel(config)
