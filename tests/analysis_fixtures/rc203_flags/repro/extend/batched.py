"""Mini engine: the batch loop that makes kernel.score per-batch code."""


class Engine:
    def run_stream(self, kernel, batches):
        scores = None
        for p0, p1 in batches:
            scores = kernel.score(p0, p1)
        return scores
