"""RC102 fixture: SharedMemory released only on the happy path."""

from multiprocessing import shared_memory


def publish(payload: bytes) -> str:
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    shm.buf[: len(payload)] = payload  # raising here leaks the segment
    name = shm.name
    shm.close()
    shm.unlink()
    return name
