"""RC104 fixture: ad-hoc sleep/retry loop outside the supervisor."""

import time


def fetch_with_retry(tries: int) -> int:
    for attempt in range(tries):
        try:
            return attempt
        except OSError:
            time.sleep(0.1 * (attempt + 1))
    return -1
