"""RC302 fixture: a signal handler doing real work.

Handlers interrupt arbitrary bytecode; mutating shared structures or
calling non-reentrant code from one is a reentrancy bug.  A handler may
only set a flag and kick a thread.
"""

import signal

STATS: dict[str, int] = {}


def rebuild_pool() -> None:
    pass


def _handler(num: int, frame: object) -> None:
    STATS["signals"] = STATS.get("signals", 0) + 1  # shared-dict mutation
    rebuild_pool()  # arbitrary call mid-interrupt


def install() -> None:
    signal.signal(signal.SIGTERM, _handler)
