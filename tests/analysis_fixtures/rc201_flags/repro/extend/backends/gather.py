"""RC201 violations: hidden copies on the per-batch score path."""

import numpy as np

from .registry import register_backend


class GatherKernel:
    def __init__(self, config):
        self._config = config
        self._buf0 = None
        self._buf1 = None

    def prepare(self, buf0, buf1):
        self._buf0 = buf0
        self._buf1 = buf1

    def score(self, anchors0, anchors1):
        idx = np.asarray(anchors0, dtype=np.int64)
        w0 = self._buf0[idx]  # fancy gather: a fresh copy every batch
        flat = w0.flatten()  # flatten always copies
        widened = flat.astype(np.int32)  # astype without copy=False
        return widened


@register_backend("gather", score_dtype="int32", max_batch_pairs=4096)
def make_gather(config):
    return GatherKernel(config)
