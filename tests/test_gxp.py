"""Gapped-extension operator (GXP) and dual-design deployment tests."""

import numpy as np
import pytest

from repro.core.pipeline import SeedComparisonPipeline
from repro.extend.gapped import smith_waterman
from repro.extend.ungapped import UngappedHits, UngappedStats
from repro.psc.gapped_operator import UNIT_OVERHEAD, GxpConfig, GxpOperator
from repro.rasc.dual_design import DualDesignPipeline, HostDispatch
from repro.seqs.generate import random_protein_bank
from repro.seqs.sequence import SequenceBank


def make_hits(bank0: SequenceBank, bank1: SequenceBank, n: int, seed=0) -> UngappedHits:
    rng = np.random.default_rng(seed)
    o0 = bank0.starts[rng.integers(0, len(bank0), n)] + 5
    o1 = bank1.starts[rng.integers(0, len(bank1), n)] + 5
    return UngappedHits(
        o0.astype(np.int64),
        o1.astype(np.int64),
        np.full(n, 50, dtype=np.int32),
        UngappedStats(pairs=n, hits=n),
    )


@pytest.fixture(scope="module")
def banks():
    rng = np.random.default_rng(5)
    return (
        random_protein_bank(rng, 8, mean_length=150, name_prefix="a"),
        random_protein_bank(rng, 8, mean_length=150, name_prefix="b"),
    )


class TestGxpConfig:
    def test_extension_cycles(self):
        cfg = GxpConfig(band=32)
        assert cfg.extension_cycles(100, 120) == 100 + 120 + 32 + UNIT_OVERHEAD

    def test_validation(self):
        with pytest.raises(ValueError):
            GxpConfig(n_units=0)
        with pytest.raises(ValueError):
            GxpConfig(extent=4)


class TestGxpOperator:
    def test_scores_match_banded_sw(self, banks):
        b0, b1 = banks
        hits = make_hits(b0, b1, 10)
        cfg = GxpConfig(n_units=2, band=16, extent=64)
        result = GxpOperator(cfg).run(b0, b1, hits)
        for i in range(len(hits)):
            o0, o1 = int(hits.offsets0[i]), int(hits.offsets1[i])
            a = b0.buffer[max(0, o0 - 64) : o0 + 64]
            b = b1.buffer[max(0, o1 - 64) : o1 + 64]
            expect = smith_waterman(a, b, band=16).score
            assert result.scores[i] == expect

    def test_unit_balancing(self, banks):
        b0, b1 = banks
        hits = make_hits(b0, b1, 40)
        result = GxpOperator(GxpConfig(n_units=4)).run(
            b0, b1, hits, compute_scores=False
        )
        # Greedy assignment keeps units within one extension of each other.
        spread = int(result.unit_cycles.max() - result.unit_cycles.min())
        assert spread <= GxpConfig().extension_cycles(256, 256)
        assert result.utilization > 0.8

    def test_more_units_reduce_makespan(self, banks):
        b0, b1 = banks
        hits = make_hits(b0, b1, 64)
        t1 = GxpOperator(GxpConfig(n_units=1)).run(b0, b1, hits, False).total_cycles
        t8 = GxpOperator(GxpConfig(n_units=8)).run(b0, b1, hits, False).total_cycles
        assert t8 < t1
        assert t1 / t8 > 4  # near-linear on uniform work

    def test_empty_hits(self, banks):
        b0, b1 = banks
        hits = make_hits(b0, b1, 0)
        result = GxpOperator().run(b0, b1, hits)
        assert len(result) == 0
        assert result.total_cycles == 0

    def test_modeled_seconds_consistent(self, banks):
        b0, b1 = banks
        hits = make_hits(b0, b1, 32)
        cfg = GxpConfig(n_units=4, extent=128)
        run = GxpOperator(cfg).run(b0, b1, hits, compute_scores=False)
        modeled = cfg.seconds(run.total_cycles)
        quick = GxpOperator(cfg).modeled_seconds(32)
        assert quick == pytest.approx(modeled, rel=0.2)


class TestDualDesign:
    def test_same_alignments_as_software(self, planted_workload):
        """Pre-scoring on the GXP must not lose any reported alignment."""
        queries, genome, _ = planted_workload
        sw = SeedComparisonPipeline().compare_with_genome(queries, genome)
        dd = DualDesignPipeline().run(queries, genome)
        sw_keys = {(a.seq0_name, a.seq1_name, a.start1, a.raw_score) for a in sw}
        dd_keys = {(a.seq0_name, a.seq1_name, a.start1, a.raw_score) for a in dd.report}
        assert sw_keys == dd_keys

    def test_timing_decomposition(self, planted_workload):
        queries, genome, _ = planted_workload
        res = DualDesignPipeline().run(queries, genome)
        assert res.accel_seconds == max(res.psc_seconds, res.gxp_seconds)
        assert res.total_seconds == pytest.approx(
            res.step1_seconds + res.accel_seconds + res.host_step3_seconds
        )

    def test_multicore_dispatch_speeds_host(self, planted_workload):
        queries, genome, _ = planted_workload
        one = DualDesignPipeline(dispatch=HostDispatch(n_cores=1)).run(queries, genome)
        four = DualDesignPipeline(dispatch=HostDispatch(n_cores=4)).run(queries, genome)
        assert four.step1_seconds < one.step1_seconds
        assert four.total_seconds < one.total_seconds


class TestHostDispatch:
    def test_amdahl(self):
        d = HostDispatch(n_cores=4, parallel_fraction=0.8)
        assert d.seconds(10.0) == pytest.approx(10 * (0.2 + 0.8 / 4))

    def test_single_core_identity(self):
        assert HostDispatch(n_cores=1).seconds(7.0) == pytest.approx(7.0)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            HostDispatch(n_cores=0).seconds(1.0)


class TestWavefront:
    """The systolic anti-diagonal engine equals banded Smith-Waterman."""

    def test_equals_banded_sw_randomised(self):
        import numpy as np
        from repro.psc.gapped_operator import wavefront_banded_score
        from repro.seqs.generate import mutate_protein, random_protein

        rng = np.random.default_rng(9)
        for _ in range(20):
            m = int(rng.integers(1, 70))
            band = int(rng.integers(1, 16))
            a = random_protein(rng, m)
            if rng.random() < 0.5:
                b = mutate_protein(rng, a, identity=0.6)
            else:
                b = random_protein(rng, int(rng.integers(1, 70)))
            got, waves = wavefront_banded_score(a, b, band)
            assert got == smith_waterman(a, b, band=band).score
            assert waves == len(a) + len(b) - 1

    def test_empty_inputs(self):
        import numpy as np
        from repro.psc.gapped_operator import wavefront_banded_score

        score, waves = wavefront_banded_score(
            np.empty(0, dtype=np.uint8), np.array([1], dtype=np.uint8), 4
        )
        assert (score, waves) == (0, 0)

    def test_wider_band_never_lower(self):
        import numpy as np
        from repro.psc.gapped_operator import wavefront_banded_score
        from repro.seqs.generate import mutate_protein, random_protein

        rng = np.random.default_rng(2)
        a = random_protein(rng, 60)
        b = mutate_protein(rng, a, identity=0.55, indel_rate=0.05)
        narrow, _ = wavefront_banded_score(a, b, band=2)
        wide, _ = wavefront_banded_score(a, b, band=20)
        assert wide >= narrow
