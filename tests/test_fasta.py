"""FASTA I/O tests."""

import io

import pytest

from repro.seqs.alphabet import DNA
from repro.seqs.fasta import bank_from_text, load_bank, read_fasta, save_bank, write_fasta
from repro.seqs.sequence import Sequence


SAMPLE = """>seq1 first protein
MKVLAWTRQ
MKVL
>seq2
AWTR
"""


class TestRead:
    def test_parse_two_records(self):
        seqs = list(read_fasta(io.StringIO(SAMPLE)))
        assert [s.name for s in seqs] == ["seq1", "seq2"]
        assert seqs[0].text() == "MKVLAWTRQMKVL"
        assert seqs[0].description == "first protein"
        assert seqs[1].text() == "AWTR"

    def test_blank_lines_ignored(self):
        seqs = list(read_fasta(io.StringIO(">a\n\nMK\n\nVL\n")))
        assert seqs[0].text() == "MKVL"

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError, match="before first"):
            list(read_fasta(io.StringIO("MKVL\n>a\nMK\n")))

    def test_dna_alphabet(self):
        seqs = list(read_fasta(io.StringIO(">g\nACGT\n"), DNA))
        assert seqs[0].alphabet is DNA

    def test_empty_stream(self):
        assert list(read_fasta(io.StringIO(""))) == []


class TestStrictValidation:
    """Truncated/garbage input is rejected with the offending record named."""

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError, match="record 'a' is empty"):
            list(read_fasta(io.StringIO(">a\n>b\nMKVL\n")))

    def test_header_only_file_rejected(self):
        # What a file truncated right after its last header looks like.
        with pytest.raises(ValueError, match="'trunc' is empty"):
            list(read_fasta(io.StringIO(">trunc\n")))

    def test_unnamed_empty_record_labelled(self):
        with pytest.raises(ValueError, match="<unnamed>"):
            list(read_fasta(io.StringIO(">\n")))

    def test_non_alphabet_residues_rejected(self):
        with pytest.raises(ValueError, match="'bad'.*amino alphabet.*'1'"):
            list(read_fasta(io.StringIO(">ok\nMKVL\n>bad\nMK1VL\n")))

    def test_binary_garbage_reports_count_and_truncates_list(self):
        garbage = ">g\n" + "".join(chr(c) for c in range(33, 53)) + "\n"
        with pytest.raises(ValueError) as err:
            list(read_fasta(io.StringIO(garbage)))
        msg = str(err.value)
        assert "character(s) outside the amino alphabet" in msg
        assert "..." in msg  # long offender lists are elided

    def test_wrong_alphabet_rejected(self):
        with pytest.raises(ValueError, match="dna alphabet"):
            list(read_fasta(io.StringIO(">p\nMKVL\n"), DNA))

    def test_lowercase_residues_accepted(self):
        seqs = list(read_fasta(io.StringIO(">a\nmkvl\n")))
        assert seqs[0].text() == "MKVL"

    def test_valid_records_before_bad_one_not_yielded_lazily(self):
        reader = read_fasta(io.StringIO(">ok\nMKVL\n>bad\n\n>tail\nAW\n"))
        assert next(reader).name == "ok"
        with pytest.raises(ValueError, match="'bad'"):
            next(reader)

    def test_strict_false_restores_permissive_reads(self):
        seqs = list(read_fasta(io.StringIO(">a\n>b\nMK1VL\n"), strict=False))
        assert [s.name for s in seqs] == ["a", "b"]
        assert len(seqs[0]) == 0
        # Unknown characters encode to the alphabet fallback code (X).
        assert seqs[1].text() == "MKXVL"

    def test_bank_helpers_forward_strict(self, tmp_path):
        with pytest.raises(ValueError, match="is empty"):
            bank_from_text(">a\n")
        assert bank_from_text(">a\n", strict=False).names == ("a",)
        path = tmp_path / "bad.fasta"
        path.write_text(">x\nMK!VL\n", encoding="ascii")
        with pytest.raises(ValueError, match="'x'"):
            load_bank(path)
        assert load_bank(path, strict=False).names == ("x",)


class TestWrite:
    def test_roundtrip_via_files(self, tmp_path):
        path = tmp_path / "x.fasta"
        seqs = [
            Sequence.from_text("a", "MKVL", description="desc here"),
            Sequence.from_text("b", "AWTR" * 30),
        ]
        write_fasta(seqs, path, width=50)
        back = list(read_fasta(path))
        assert [s.text() for s in back] == [s.text() for s in seqs]
        assert back[0].description == "desc here"

    def test_line_wrapping(self):
        out = io.StringIO()
        write_fasta([Sequence.from_text("a", "M" * 25)], out, width=10)
        lines = out.getvalue().splitlines()
        assert lines[1:] == ["M" * 10, "M" * 10, "M" * 5]


class TestBankHelpers:
    def test_bank_from_text(self):
        bank = bank_from_text(SAMPLE)
        assert len(bank) == 2
        assert bank.names == ("seq1", "seq2")

    def test_save_and_load_bank(self, tmp_path):
        bank = bank_from_text(SAMPLE)
        path = tmp_path / "bank.fasta"
        save_bank(bank, path)
        back = load_bank(path)
        assert back.names == bank.names
        assert back.total_residues == bank.total_residues
