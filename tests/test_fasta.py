"""FASTA I/O tests."""

import io

import pytest

from repro.seqs.alphabet import DNA
from repro.seqs.fasta import bank_from_text, load_bank, read_fasta, save_bank, write_fasta
from repro.seqs.sequence import Sequence


SAMPLE = """>seq1 first protein
MKVLAWTRQ
MKVL
>seq2
AWTR
"""


class TestRead:
    def test_parse_two_records(self):
        seqs = list(read_fasta(io.StringIO(SAMPLE)))
        assert [s.name for s in seqs] == ["seq1", "seq2"]
        assert seqs[0].text() == "MKVLAWTRQMKVL"
        assert seqs[0].description == "first protein"
        assert seqs[1].text() == "AWTR"

    def test_blank_lines_ignored(self):
        seqs = list(read_fasta(io.StringIO(">a\n\nMK\n\nVL\n")))
        assert seqs[0].text() == "MKVL"

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError, match="before first"):
            list(read_fasta(io.StringIO("MKVL\n>a\nMK\n")))

    def test_dna_alphabet(self):
        seqs = list(read_fasta(io.StringIO(">g\nACGT\n"), DNA))
        assert seqs[0].alphabet is DNA

    def test_empty_stream(self):
        assert list(read_fasta(io.StringIO(""))) == []


class TestWrite:
    def test_roundtrip_via_files(self, tmp_path):
        path = tmp_path / "x.fasta"
        seqs = [
            Sequence.from_text("a", "MKVL", description="desc here"),
            Sequence.from_text("b", "AWTR" * 30),
        ]
        write_fasta(seqs, path, width=50)
        back = list(read_fasta(path))
        assert [s.text() for s in back] == [s.text() for s in seqs]
        assert back[0].description == "desc here"

    def test_line_wrapping(self):
        out = io.StringIO()
        write_fasta([Sequence.from_text("a", "M" * 25)], out, width=10)
        lines = out.getvalue().splitlines()
        assert lines[1:] == ["M" * 10, "M" * 10, "M" * 5]


class TestBankHelpers:
    def test_bank_from_text(self):
        bank = bank_from_text(SAMPLE)
        assert len(bank) == 2
        assert bank.names == ("seq1", "seq2")

    def test_save_and_load_bank(self, tmp_path):
        bank = bank_from_text(SAMPLE)
        path = tmp_path / "bank.fasta"
        save_bank(bank, path)
        back = load_bank(path)
        assert back.names == bank.names
        assert back.total_residues == bank.total_residues
