"""Index persistence tests."""

import numpy as np
import pytest

from repro.index.kmer import BankIndex, ContiguousSeedModel, TwoBankIndex
from repro.index.persist import FORMAT_VERSION, load_index, save_index
from repro.index.subset_seed import DEFAULT_SUBSET_SEED
from repro.seqs.generate import random_protein_bank


@pytest.fixture
def index(rng):
    bank = random_protein_bank(rng, 12, mean_length=120)
    return BankIndex(bank, DEFAULT_SUBSET_SEED)


class TestRoundtrip:
    def test_structure_preserved(self, index, tmp_path):
        path = tmp_path / "bank.idx.npz"
        save_index(index, path)
        back = load_index(path)
        assert back.n_anchors == index.n_anchors
        assert np.array_equal(back.unique_keys, index.unique_keys)
        assert np.array_equal(back._offsets, index._offsets)
        assert np.array_equal(back._indptr, index._indptr)

    def test_bank_content_preserved(self, index, tmp_path):
        path = tmp_path / "bank.idx.npz"
        save_index(index, path)
        back = load_index(path)
        assert back.bank.names == index.bank.names
        assert np.array_equal(back.bank.buffer, index.bank.buffer)

    def test_model_identity_preserved(self, index, tmp_path):
        path = tmp_path / "bank.idx.npz"
        save_index(index, path)
        back = load_index(path)
        assert back.model.span == index.model.span
        assert back.model.key_space == index.model.key_space

    def test_contiguous_model_roundtrip(self, rng, tmp_path):
        bank = random_protein_bank(rng, 5, mean_length=60)
        idx = BankIndex(bank, ContiguousSeedModel(3))
        save_index(idx, tmp_path / "c.npz")
        back = load_index(tmp_path / "c.npz")
        assert isinstance(back.model, ContiguousSeedModel)
        assert back.model.w == 3

    def test_loaded_index_usable_in_join(self, rng, tmp_path):
        b0 = random_protein_bank(rng, 8, mean_length=100, name_prefix="a")
        b1 = random_protein_bank(rng, 8, mean_length=100, name_prefix="b")
        i0 = BankIndex(b0, ContiguousSeedModel(3))
        i1 = BankIndex(b1, ContiguousSeedModel(3))
        direct = TwoBankIndex(i0, i1).total_pairs
        save_index(i0, tmp_path / "a.npz")
        save_index(i1, tmp_path / "b.npz")
        reloaded = TwoBankIndex(
            load_index(tmp_path / "a.npz"), load_index(tmp_path / "b.npz")
        )
        assert reloaded.total_pairs == direct

    def test_queries_resolve_identically(self, index, tmp_path):
        save_index(index, tmp_path / "x.npz")
        back = load_index(tmp_path / "x.npz")
        for key in index.unique_keys[:20]:
            assert np.array_equal(back.list_for(int(key)), index.list_for(int(key)))


class TestErrors:
    def test_unsupported_version(self, index, tmp_path):
        path = tmp_path / "bad.npz"
        save_index(index, path)
        import numpy as np

        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format_version"] = np.int64(FORMAT_VERSION + 1)
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="format"):
            load_index(path)

    def test_custom_model_rejected(self, rng, tmp_path):
        class Custom:
            span = 4
            key_space = 10

            def position_maps(self):  # pragma: no cover
                raise NotImplementedError

            def radices(self):  # pragma: no cover
                raise NotImplementedError

        bank = random_protein_bank(rng, 2, mean_length=40)
        idx = BankIndex(bank, ContiguousSeedModel(3))
        idx._model = Custom()
        with pytest.raises(TypeError, match="cannot persist"):
            save_index(idx, tmp_path / "c.npz")
