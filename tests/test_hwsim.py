"""Hardware simulation kernel tests: simulator, FIFOs, memories, DMA."""

import numpy as np
import pytest

from repro.hwsim.dma import DmaDrain, DmaStream, LinkModel
from repro.hwsim.fifo import FifoCascade, SyncFifo, fill
from repro.hwsim.kernel import Component, SimulationError, Simulator
from repro.hwsim.memory import Rom, Sram
from repro.seqs.matrices import BLOSUM62


class Counter(Component):
    """Test component: counts its ticks, idle after a quota."""

    def __init__(self, quota):
        self.quota = quota
        self.ticks = 0

    def tick(self, cycle):
        if self.ticks < self.quota:
            self.ticks += 1

    def is_idle(self):
        return self.ticks >= self.quota


class TestSimulator:
    def test_step_advances_cycle(self):
        sim = Simulator()
        sim.add(Counter(5))
        sim.step(3)
        assert sim.cycle == 3

    def test_run_until_idle(self):
        sim = Simulator()
        c = sim.add(Counter(7))
        n = sim.run_until_idle()
        assert c.ticks == 7
        assert n == 7

    def test_run_until_predicate(self):
        sim = Simulator()
        c = sim.add(Counter(100))
        sim.run_until(lambda: c.ticks >= 10)
        assert c.ticks == 10

    def test_hang_detection(self):
        sim = Simulator()
        sim.add(Counter(10**9))
        with pytest.raises(SimulationError, match="converge"):
            sim.run_until_idle(max_cycles=50)


class TestSyncFifo:
    def test_push_invisible_until_commit(self):
        f = SyncFifo(4)
        f.push(1)
        assert not f.can_pop()
        f.commit()
        assert f.can_pop()
        assert f.front() == 1

    def test_fifo_order(self):
        f = SyncFifo(8)
        fill(f, [1, 2, 3])
        assert [f.pop(), f.pop(), f.pop()] == [1, 2, 3]

    def test_overflow_raises(self):
        f = SyncFifo(2)
        fill(f, [1, 2])
        with pytest.raises(SimulationError, match="overflow"):
            f.push(3)

    def test_same_cycle_pop_frees_space(self):
        f = SyncFifo(2)
        fill(f, [1, 2])
        f.pop()
        assert f.can_push()  # staged pop frees one slot at commit
        f.push(3)
        f.commit()
        assert len(f) == 2

    def test_underflow_raises(self):
        f = SyncFifo(2)
        with pytest.raises(SimulationError, match="underflow"):
            f.pop()

    def test_high_water_tracking(self):
        f = SyncFifo(8)
        fill(f, [1, 2, 3])
        f.pop()
        f.commit()
        assert f.high_water == 3
        assert f.total_pushed == 3

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            SyncFifo(0)


class TestFifoCascade:
    def test_word_moves_one_hop_per_cycle(self):
        c = FifoCascade(3, depth=4)
        c.stage(0).push("x")
        c.commit()
        for _hop in range(2):
            c.forward()
            c.commit()
        assert c.tail.can_pop()
        assert c.tail.front() == "x"

    def test_latency_equals_stages(self):
        c = FifoCascade(5, depth=4)
        c.stage(0).push("x")
        c.commit()
        cycles = 0
        while not c.tail.can_pop():
            c.forward()
            c.commit()
            cycles += 1
        assert cycles == 4

    def test_occupancy_and_empty(self):
        c = FifoCascade(2, depth=2)
        assert c.is_empty()
        c.stage(0).push(1)
        c.commit()
        assert c.occupancy() == 1

    def test_backpressure_holds_data(self):
        c = FifoCascade(2, depth=1)
        c.stage(0).push("a")
        c.commit()
        c.forward()
        c.commit()  # a now in tail
        c.stage(0).push("b")
        c.commit()
        c.forward()  # tail full -> b stays
        c.commit()
        assert c.stage(0).front() == "b"
        assert c.tail.front() == "a"


class TestRom:
    def test_read_and_accounting(self):
        rom = Rom(np.array([5, -3, 7], dtype=np.int8))
        assert rom.read(1) == -3
        assert rom.reads == 1

    def test_out_of_range(self):
        rom = Rom(np.zeros(4, dtype=np.int8))
        with pytest.raises(SimulationError, match="out of range"):
            rom.read(4)

    def test_substitution_rom_matches_matrix(self):
        rom = Rom.substitution_rom(BLOSUM62)
        assert rom.size == 1024
        for a in (0, 10, 24):
            for b in (0, 19, 23):
                assert rom.read(a * 32 + b) == BLOSUM62.score(a, b)

    def test_image_readonly(self):
        rom = Rom(np.zeros(4, dtype=np.int8))
        with pytest.raises(ValueError):
            rom._image[0] = 1


class TestSram:
    def test_block_roundtrip(self):
        s = Sram(64)
        s.write_block(8, np.arange(10))
        assert np.array_equal(s.read_block(8, 10), np.arange(10))
        assert s.writes == 10 and s.reads == 10

    def test_word_roundtrip(self):
        s = Sram(16)
        s.write(3, 42)
        assert s.read(3) == 42

    def test_capacity_enforced(self):
        s = Sram(8)
        with pytest.raises(SimulationError, match="outside capacity"):
            s.write_block(6, np.arange(4))

    def test_bad_size(self):
        with pytest.raises(ValueError):
            Sram(0)


class TestLinkModel:
    def test_transfer_time_formula(self):
        link = LinkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-6)
        assert link.transfer_seconds(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_accounting(self):
        link = LinkModel()
        link.record_in(1000)
        link.record_out(500)
        assert link.accounting.bytes_in == 1000
        assert link.accounting.bytes_out == 500
        assert link.accounting.transfers == 2
        assert link.accounting.busy_seconds > 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LinkModel().transfer_seconds(-1)

    def test_sustained_rate(self):
        link = LinkModel(bandwidth_bytes_per_s=1.2e9)
        assert link.sustained_result_rate(12) == pytest.approx(1e8)


class TestDmaStreamDrain:
    def test_stream_to_drain_pipeline(self):
        data = np.arange(20)
        fifo = SyncFifo(4, "pipe")
        sim = Simulator()
        src = sim.add(DmaStream(data, fifo, words_per_cycle=2))
        dst = sim.add(DmaDrain(fifo, words_per_cycle=1))
        sim.run_until(lambda: len(dst.received) == 20, max_cycles=200)
        assert dst.received == list(range(20))

    def test_backpressure_stalls_source(self):
        data = np.arange(50)
        fifo = SyncFifo(2, "narrow")
        sim = Simulator()
        src = sim.add(DmaStream(data, fifo, words_per_cycle=4))
        dst = sim.add(DmaDrain(fifo, words_per_cycle=1))
        sim.run_until(lambda: len(dst.received) == 50, max_cycles=500)
        assert src.stall_cycles > 0
        assert dst.received == list(range(50))

    def test_drain_preserves_rate(self):
        data = np.arange(10)
        fifo = SyncFifo(16)
        sim = Simulator()
        sim.add(DmaStream(data, fifo, words_per_cycle=10))
        dst = sim.add(DmaDrain(fifo, words_per_cycle=1))
        sim.step(1)  # all pushed
        start = sim.cycle
        sim.run_until(lambda: len(dst.received) == 10, max_cycles=100)
        # One word per cycle after the first commit.
        assert sim.cycle - start == 10


class TestTracer:
    def make_traced_pipeline(self):
        from repro.hwsim.trace import Probe, Tracer

        data = np.arange(30)
        fifo = SyncFifo(4, "pipe")
        sim = Simulator()
        sim.add(DmaStream(data, fifo, words_per_cycle=2))
        dst = sim.add(DmaDrain(fifo, words_per_cycle=1))
        tracer = sim.add(
            Tracer([Probe.fifo_depth("fifo", fifo), Probe.attr("rx", dst, "received")])
        )
        sim.run_until(lambda: len(dst.received) == 30, max_cycles=300)
        return tracer, fifo

    def test_samples_every_cycle(self):
        tracer, fifo = self.make_traced_pipeline()
        assert tracer.cycles == list(range(len(tracer.cycles)))
        assert len(tracer.series("fifo")) == len(tracer.cycles)

    def test_depth_bound_property(self):
        tracer, fifo = self.make_traced_pipeline()
        assert tracer.maximum("fifo") <= fifo.depth
        assert tracer.maximum("fifo") == fifo.high_water

    def test_changes_and_duration(self):
        tracer, _ = self.make_traced_pipeline()
        transitions = tracer.changes("fifo")
        assert transitions[0][0] == 0
        total = sum(tracer.duration("fifo", v) for v in set(tracer.series("fifo")))
        assert total == len(tracer.cycles)

    def test_csv_export(self):
        tracer, _ = self.make_traced_pipeline()
        csv = tracer.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "cycle,fifo,rx"
        assert len(lines) == len(tracer.cycles) + 1

    def test_waveform_rendering(self):
        tracer, _ = self.make_traced_pipeline()
        wave = tracer.waveform("fifo", width=40)
        assert wave.startswith("fifo [")
        assert len(wave) < 120

    def test_waveform_empty(self):
        from repro.hwsim.trace import Probe, Tracer

        t = Tracer([Probe("x", lambda: 0)])
        assert "(no samples)" in t.waveform("x")

    def test_max_cycles_cap(self):
        from repro.hwsim.trace import Probe, Tracer

        t = Tracer([Probe("x", lambda: 1)], max_cycles=5)
        sim = Simulator()
        sim.add(t)
        sim.step(10)
        assert len(t.cycles) == 5
