"""Sequence and SequenceBank tests."""

import numpy as np
import pytest

from repro.seqs.alphabet import AMINO, DNA, GAP_CODE
from repro.seqs.sequence import BankBuilder, Sequence, SequenceBank


def make_bank(texts, pad=8):
    return SequenceBank(
        [Sequence.from_text(f"s{i}", t) for i, t in enumerate(texts)], pad=pad
    )


class TestSequence:
    def test_from_text_roundtrip(self):
        s = Sequence.from_text("a", "MKVLA")
        assert s.text() == "MKVLA"
        assert len(s) == 5

    def test_codes_are_uint8_contiguous(self):
        s = Sequence("a", np.array([1, 2, 3], dtype=np.int64))
        assert s.codes.dtype == np.uint8
        assert s.codes.flags.c_contiguous

    def test_description_preserved(self):
        s = Sequence.from_text("a", "MK", description="hello world")
        assert s.description == "hello world"


class TestBankLayout:
    def test_buffer_padding(self):
        bank = make_bank(["MKV", "AW"], pad=4)
        buf = bank.buffer
        # Leading pad, between-sequence pad, trailing pad are all GAP_CODE.
        assert (buf[:4] == GAP_CODE).all()
        assert bank.starts[0] == 4
        assert (buf[7:11] == GAP_CODE).all()
        assert bank.starts[1] == 11
        assert (buf[13:] == GAP_CODE).all()

    def test_lengths_and_total(self):
        bank = make_bank(["MKV", "AW", "RNDC"])
        assert list(bank.lengths) == [3, 2, 4]
        assert bank.total_residues == 9
        assert len(bank) == 3

    def test_getitem_roundtrip(self):
        bank = make_bank(["MKV", "AW"])
        assert bank[0].text() == "MKV"
        assert bank[1].text() == "AW"
        assert bank[1].name == "s1"

    def test_iteration(self):
        bank = make_bank(["MKV", "AW"])
        assert [s.text() for s in bank] == ["MKV", "AW"]

    def test_buffer_is_readonly(self):
        bank = make_bank(["MKV"])
        with pytest.raises(ValueError):
            bank.buffer[0] = 1

    def test_alphabet_mismatch_rejected(self):
        dna_seq = Sequence.from_text("d", "ACGT", DNA)
        with pytest.raises(ValueError, match="alphabet"):
            SequenceBank([dna_seq], AMINO)

    def test_bad_pad_rejected(self):
        with pytest.raises(ValueError, match="pad"):
            make_bank(["MKV"], pad=0)

    def test_empty_bank(self):
        bank = SequenceBank([], AMINO, pad=4)
        assert len(bank) == 0
        assert bank.total_residues == 0
        assert bank.buffer.shape == (4,)


class TestOffsetArithmetic:
    def test_seq_id_of(self):
        bank = make_bank(["MKV", "AW"], pad=4)
        # global offsets of residues: s0 at 4..6, s1 at 11..12
        assert list(bank.seq_id_of(np.array([4, 6, 11, 12]))) == [0, 0, 1, 1]

    def test_local_position(self):
        bank = make_bank(["MKV", "AW"], pad=4)
        assert list(bank.local_position(np.array([4, 6, 12]))) == [0, 2, 1]

    def test_global_offset_roundtrip(self):
        bank = make_bank(["MKV", "AW"], pad=4)
        g = bank.global_offset(1, 1)
        assert bank.seq_id_of(np.array([g]))[0] == 1
        assert bank.local_position(np.array([g]))[0] == 1

    def test_global_offset_out_of_range(self):
        bank = make_bank(["MKV"])
        with pytest.raises(IndexError):
            bank.global_offset(0, 3)


class TestWindows:
    def test_window_content(self):
        bank = make_bank(["MKVLA"], pad=4)
        w = bank.windows(np.array([bank.global_offset(0, 1)]), left=1, width=3)
        assert AMINO.decode(w[0]) == "MKV"

    def test_window_into_padding(self):
        bank = make_bank(["MKV"], pad=4)
        w = bank.windows(np.array([bank.global_offset(0, 0)]), left=2, width=5)
        assert AMINO.decode(w[0]) == "--MKV"

    def test_window_out_of_buffer_raises(self):
        bank = make_bank(["MKV"], pad=2)
        with pytest.raises(IndexError, match="pad"):
            bank.windows(np.array([bank.global_offset(0, 0)]), left=5, width=10)

    def test_windows_batch_shape(self):
        bank = make_bank(["MKVLAMKVLA"], pad=8)
        offs = bank.starts[0] + np.arange(5)
        w = bank.windows(offs, left=2, width=6)
        assert w.shape == (5, 6)

    def test_empty_offsets(self):
        bank = make_bank(["MKV"])
        w = bank.windows(np.empty(0, dtype=np.int64), left=1, width=3)
        assert w.shape == (0, 3)


class TestBankBuilder:
    def test_builder_mixed_inputs(self):
        b = BankBuilder(pad=4)
        b.add("a", "MKV")
        b.add("b", np.array([0, 1], dtype=np.uint8))
        assert len(b) == 2
        bank = b.build()
        assert bank[0].text() == "MKV"
        assert bank[1].text() == "AR"
