"""Substitution matrix tests."""

import numpy as np
import pytest

from repro.seqs.alphabet import AMINO, GAP_CODE, STOP_CODE, encode_protein
from repro.seqs.matrices import (
    BLOSUM45,
    BLOSUM62,
    BLOSUM80,
    GAP_SCORE,
    SubstitutionMatrix,
    get_matrix,
)

ALL = [BLOSUM62, BLOSUM80, BLOSUM45]


class TestBlosum62Values:
    """Spot checks against the published BLOSUM62."""

    def test_known_entries(self):
        def s(a, b):
            return BLOSUM62.score(int(encode_protein(a)[0]), int(encode_protein(b)[0]))

        assert s("A", "A") == 4
        assert s("W", "W") == 11
        assert s("C", "C") == 9
        assert s("A", "R") == -1
        assert s("I", "L") == 2
        assert s("W", "D") == -4
        assert s("K", "R") == 2
        assert s("*", "*") == 1
        assert s("A", "*") == -4

    def test_shape_and_dtype(self):
        assert BLOSUM62.scores.shape == (25, 25)
        assert BLOSUM62.scores.dtype == np.int8


@pytest.mark.parametrize("matrix", ALL, ids=lambda m: m.name)
class TestMatrixProperties:
    def test_symmetry(self, matrix):
        # Symmetric over the real residue/ambiguity codes (gap row excluded).
        s = matrix.scores[:24, :24]
        assert (s == s.T).all()

    def test_positive_diagonal(self, matrix):
        assert (np.diag(matrix.scores)[:20] > 0).all()

    def test_negative_expected_score(self, matrix):
        # Required for Karlin-Altschul statistics to exist.
        assert matrix.scores[:20, :20].astype(float).mean() < 0

    def test_gap_sentinel_row(self, matrix):
        assert (matrix.scores[GAP_CODE, :] == GAP_SCORE).all()
        assert (matrix.scores[:, GAP_CODE] == GAP_SCORE).all()

    def test_stop_heavily_penalised(self, matrix):
        assert (matrix.scores[STOP_CODE, :20] < 0).all()

    def test_min_max(self, matrix):
        assert matrix.max_score() > 0
        assert matrix.min_score() < 0

    def test_pair_scores_broadcast(self, matrix):
        a = np.array([0, 1, 2], dtype=np.uint8)
        b = np.array([0, 1, 2], dtype=np.uint8)
        out = matrix.pair_scores(a[:, None], b[None, :])
        assert out.shape == (3, 3)
        assert out[1, 2] == matrix.score(1, 2)

    def test_rom_contents_layout(self, matrix):
        rom = matrix.rom_contents()
        assert rom.shape == (1024,)
        for a in (0, 7, 19, 24):
            for b in (0, 13, 24):
                assert rom[a * 32 + b] == matrix.score(a, b)
        # Unused slots (codes 25..31) hold the gap penalty.
        assert rom[25 * 32 + 0] == GAP_SCORE


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_matrix("blosum62") is BLOSUM62
        assert get_matrix("BLOSUM80") is BLOSUM80

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown matrix"):
            get_matrix("PAM250")

    def test_scores_readonly(self):
        with pytest.raises(ValueError):
            BLOSUM62.scores[0, 0] = 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            SubstitutionMatrix("bad", np.zeros((20, 20), dtype=np.int8))

    def test_malformed_text_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            SubstitutionMatrix.from_ncbi_text("bad", "A R\nA 1")
