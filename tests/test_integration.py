"""Cross-module integration tests.

These exercise whole user journeys: file I/O through the pipeline, all
engines on one workload, hardware/software agreement at every fidelity
level, and coordinate bookkeeping from alignments back to genome bases.
"""

import numpy as np
import pytest

from repro.baseline.tblastn import TblastnSearch
from repro.core.config import PipelineConfig
from repro.core.modes import BlastFamilySearch
from repro.core.partition import split_bank
from repro.core.pipeline import SeedComparisonPipeline
from repro.core.results import ComparisonReport
from repro.eval.benchmark_data import frame_interval
from repro.rasc.accelerated import AcceleratedPipeline
from repro.rasc.dual_design import DualDesignPipeline
from repro.seqs.alphabet import DNA
from repro.seqs.fasta import load_bank, read_fasta, write_fasta
from repro.seqs.generate import make_family, plant_homologs, random_genome
from repro.seqs.sequence import Sequence, SequenceBank


class TestFourEnginesOneWorkload:
    """Software, accelerated, dual-design and baseline engines must agree
    on what is in the genome."""

    @pytest.fixture(scope="class")
    def reports(self, planted_workload):
        queries, genome, truth = planted_workload
        return {
            "software": SeedComparisonPipeline().compare_with_genome(queries, genome),
            "accel": AcceleratedPipeline().run(queries, genome).report,
            "dual": DualDesignPipeline().run(queries, genome).report,
            "baseline": TblastnSearch().search_genome(queries, genome),
        }, truth

    def test_every_engine_finds_every_family(self, reports):
        reps, truth = reports
        families = {f"fam{t.family_id}" for t in truth}
        for name, rep in reps.items():
            assert {a.seq0_name for a in rep} >= families, name

    def test_hardware_paths_identical_to_software(self, reports):
        reps, _ = reports
        key = lambda rep: sorted(
            (a.seq0_name, a.seq1_name, a.start0, a.end0, a.raw_score) for a in rep
        )
        assert key(reps["software"]) == key(reps["accel"])
        assert key(reps["software"]) == key(reps["dual"])

    def test_engines_agree_on_strong_loci(self, reports):
        reps, _ = reports
        def strong(rep):
            return {
                (a.seq0_name, a.seq1_name, a.start1) for a in rep if a.evalue < 1e-20
            }
        assert strong(reps["software"]) == strong(reps["baseline"])


class TestFileRoundtrip:
    def test_fasta_to_report(self, tmp_path, planted_workload):
        queries, genome, _ = planted_workload
        qpath, gpath = tmp_path / "q.fa", tmp_path / "g.fa"
        write_fasta(iter(queries), qpath)
        write_fasta([genome], gpath)
        q2 = load_bank(qpath)
        g2 = next(iter(read_fasta(gpath, DNA)))
        direct = SeedComparisonPipeline().compare_with_genome(queries, genome)
        via_files = SeedComparisonPipeline().compare_with_genome(q2, g2)
        assert len(direct) == len(via_files)
        assert [a.raw_score for a in direct] == [a.raw_score for a in via_files]


class TestCoordinateBookkeeping:
    def test_alignment_footprint_covers_plant(self, rng):
        """Frame-coordinate round trip: the best alignment's genomic
        footprint must overlap the planted locus on the right strand."""
        fam = make_family(rng, 0, 200, 1, identity_range=(0.9, 0.9))
        genome = random_genome(rng, 40_000)
        genome, truth = plant_homologs(rng, genome, [fam])
        t = truth[0]
        queries = SequenceBank([Sequence("q", fam.ancestor)])
        report = SeedComparisonPipeline().compare_with_genome(queries, genome)
        best = report.best(1)[0]
        start, end = frame_interval(
            best.seq1_name, best.start1, best.end1, len(genome)
        )
        overlap = min(end, t.genome_end) - max(start, t.genome_start)
        span = t.genome_end - t.genome_start
        assert overlap > 0.8 * span
        frame_sign = "-" if "-" in best.seq1_name.split("|frame")[1] else "+"
        assert (frame_sign == "+") == (t.strand == 1)


class TestPartitionedEquivalence:
    def test_split_bank_union_of_reports(self, planted_workload):
        """Comparing bank halves separately and merging equals comparing
        the whole bank (the 2-FPGA correctness argument)."""
        queries, genome, _ = planted_workload
        whole = SeedComparisonPipeline().compare_with_genome(queries, genome)
        parts = []
        for half in split_bank(queries, 2):
            if len(half) == 0:
                continue
            parts.append(SeedComparisonPipeline().compare_with_genome(half, genome))
        merged = ComparisonReport.merged(parts)
        assert sorted(a.raw_score for a in whole) == sorted(
            a.raw_score for a in merged
        )


class TestModesConsistency:
    def test_tblastn_mode_equals_pipeline(self, planted_workload):
        queries, genome, _ = planted_workload
        facade = BlastFamilySearch(seg=None).tblastn(queries, genome)
        direct = SeedComparisonPipeline().compare_with_genome(queries, genome)
        assert sorted(a.raw_score for a in facade) == sorted(
            a.raw_score for a in direct
        )


class TestProfileConsistency:
    def test_counts_scale_with_workload(self, rng):
        """Doubling the genome roughly doubles step-2 pairs (linearity the
        projection model relies on)."""
        from repro.seqs.generate import random_protein_bank

        bank = random_protein_bank(rng, 30, mean_length=200)
        pairs = []
        for nt in (40_000, 80_000):
            genome = random_genome(np.random.default_rng(3), nt)
            pipe = SeedComparisonPipeline()
            rep = pipe.compare_with_genome(bank, genome)
            pairs.append(rep.n_seed_pairs)
        ratio = pairs[1] / max(1, pairs[0])
        assert 1.6 < ratio < 2.4
