"""Genetic code and translation tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seqs.alphabet import DNA, STOP_CODE, UNKNOWN_AA_CODE, decode_protein, encode_dna
from repro.seqs.sequence import Sequence
from repro.seqs.translate import (
    STANDARD_CODE,
    GeneticCode,
    codon_of,
    reverse_complement,
    translate,
    translate_six_frames,
    translated_bank,
)


class TestGeneticCode:
    def test_known_codons(self):
        cases = {
            "ATG": "M",
            "TGG": "W",
            "TAA": "*",
            "TAG": "*",
            "TGA": "*",
            "GCT": "A",
            "AAA": "K",
            "TTT": "F",
        }
        for codon, aa in cases.items():
            got = STANDARD_CODE.translate_codes(encode_dna(codon))
            assert decode_protein(got) == aa, codon

    def test_exactly_three_stops(self):
        assert int((STANDARD_CODE.table == STOP_CODE).sum()) == 3

    def test_all_twenty_amino_acids_encoded(self):
        assert set(range(20)) <= set(STANDARD_CODE.table.tolist())

    def test_n_codon_gives_x(self):
        got = STANDARD_CODE.translate_codes(encode_dna("ANG"))
        assert got[0] == UNKNOWN_AA_CODE

    def test_partial_codon_dropped(self):
        assert STANDARD_CODE.translate_codes(encode_dna("ATGGC")).shape == (1,)

    def test_empty(self):
        assert STANDARD_CODE.translate_codes(encode_dna("")).shape == (0,)

    def test_incomplete_mapping_rejected(self):
        with pytest.raises(ValueError, match="64"):
            GeneticCode.from_mapping("bad", {"ATG": "M"})


class TestReverseComplement:
    def test_basic(self):
        rc = reverse_complement(encode_dna("AACGT"))
        assert DNA.decode(rc) == "ACGTT"

    def test_n_preserved(self):
        assert DNA.decode(reverse_complement(encode_dna("ANT"))) == "ANT"

    @given(st.text(alphabet="ACGTN", max_size=100))
    def test_involution(self, text):
        nt = encode_dna(text)
        assert np.array_equal(reverse_complement(reverse_complement(nt)), nt)


class TestFrames:
    def test_forward_frames(self):
        nt = encode_dna("ATGGCCTAA")  # M A *
        assert decode_protein(translate(nt, 1)) == "MA*"
        assert decode_protein(translate(nt, 2)) == "WP"  # TGG CCT
        assert decode_protein(translate(nt, 3)) == "GL"  # GGC CTA

    def test_reverse_frame_is_forward_of_rc(self):
        nt = encode_dna("ATGGCCTAAGCT")
        rc = reverse_complement(nt)
        for f in (1, 2, 3):
            assert np.array_equal(translate(nt, -f), translate(rc, f))

    def test_bad_frame_rejected(self):
        with pytest.raises(ValueError, match="frame"):
            translate(encode_dna("ATG"), 4)

    def test_six_frames_lengths(self):
        nt = encode_dna("A" * 100)
        frames = translate_six_frames(nt)
        assert set(frames) == {1, 2, 3, -1, -2, -3}
        assert [len(frames[f]) for f in (1, 2, 3)] == [33, 33, 32]

    def test_translated_bank_names(self):
        genome = Sequence.from_text("chr", "ATG" * 30, DNA)
        bank = translated_bank(genome)
        assert len(bank) == 6
        assert "chr|frame+1" in bank.names
        assert "chr|frame-3" in bank.names

    def test_translated_bank_requires_dna(self):
        with pytest.raises(ValueError, match="DNA"):
            translated_bank(Sequence.from_text("p", "MKV"))


class TestCodonOf:
    def test_forward(self):
        assert codon_of(1, 0, 99) == 0
        assert codon_of(1, 5, 99) == 15
        assert codon_of(3, 2, 99) == 8

    def test_reverse(self):
        L = 99
        # Residue 0 of frame -1 comes from the last base of the genome.
        assert codon_of(-1, 0, L) == L - 1
        assert codon_of(-2, 0, L) == L - 2

    def test_planted_orf_found_in_correct_frame(self):
        # Place a known peptide at a codon boundary and read it back.
        pep = "MKVLAWTRQ"
        from repro.seqs.generate import reverse_translate

        rng = np.random.default_rng(0)
        from repro.seqs.alphabet import encode_protein

        nt = reverse_translate(rng, encode_protein(pep))
        pad = encode_dna("ACGTAC")  # 6 nt -> peptide starts at offset 6, frame +1
        genome = np.concatenate([pad, nt])
        aa = translate(genome, 1)
        assert pep in decode_protein(aa)
