"""SEG low-complexity masking tests."""

import numpy as np
import pytest

from repro.seqs.alphabet import UNKNOWN_AA_CODE, encode_protein
from repro.seqs.generate import random_protein, random_protein_bank
from repro.seqs.lowcomplexity import SegConfig, mask_bank, seg_mask, window_entropy


class TestWindowEntropy:
    def test_homopolymer_entropy_zero(self):
        ent = window_entropy(encode_protein("A" * 20), window=12)
        assert np.allclose(ent, 0.0)

    def test_diverse_window_high_entropy(self):
        ent = window_entropy(encode_protein("ARNDCQEGHILK"), window=12)
        assert ent[0] == pytest.approx(np.log2(12))

    def test_two_letter_repeat(self):
        ent = window_entropy(encode_protein("ABABABABABAB".replace("B", "K")), 12)
        assert ent[0] == pytest.approx(1.0)

    def test_short_sequence(self):
        assert window_entropy(encode_protein("MK"), 12).shape == (0,)

    def test_length(self):
        ent = window_entropy(encode_protein("M" * 30), 12)
        assert ent.shape == (19,)


class TestSegMask:
    def test_poly_a_run_masked(self):
        rng = np.random.default_rng(0)
        flank = random_protein(rng, 60)
        seq = np.concatenate([flank, encode_protein("A" * 30), flank])
        masked, frac = seg_mask(seq)
        run = masked[60:90]
        assert (run == UNKNOWN_AA_CODE).all()
        assert 0 < frac < 0.5

    def test_random_protein_mostly_unmasked(self, rng):
        seq = random_protein(rng, 2000)
        masked, frac = seg_mask(seq)
        assert frac < 0.05

    def test_mask_is_idempotent(self, rng):
        seq = np.concatenate(
            [random_protein(rng, 50), encode_protein("Q" * 25), random_protein(rng, 50)]
        )
        once, f1 = seg_mask(seq)
        twice, f2 = seg_mask(once)
        assert np.array_equal(once, twice)

    def test_clean_sequence_untouched(self):
        seq = encode_protein("ARNDCQEGHILKMFPSTWYV" * 3)
        masked, frac = seg_mask(seq)
        assert frac == 0.0
        assert np.array_equal(masked, seq)

    def test_short_sequence_passthrough(self):
        seq = encode_protein("MKV")
        masked, frac = seg_mask(seq)
        assert frac == 0.0
        assert np.array_equal(masked, seq)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SegConfig(window=1)
        with pytest.raises(ValueError):
            SegConfig(trigger_entropy=2.5, extend_entropy=2.0)

    def test_stricter_trigger_masks_less(self, rng):
        seq = np.concatenate(
            [random_protein(rng, 80), encode_protein("AKAKAKAKAKAKAKAK"),
             random_protein(rng, 80)]
        )
        _, loose = seg_mask(seq, SegConfig(trigger_entropy=2.4, extend_entropy=2.6))
        _, strict = seg_mask(seq, SegConfig(trigger_entropy=1.2, extend_entropy=1.2))
        assert strict <= loose


class TestMaskBank:
    def test_bank_masking_preserves_structure(self, rng):
        bank = random_protein_bank(rng, 10, mean_length=120)
        masked, frac = mask_bank(bank)
        assert len(masked) == len(bank)
        assert masked.names == bank.names
        assert masked.total_residues == bank.total_residues
        assert 0 <= frac < 0.1

    def test_masking_removes_seed_anchors(self, rng):
        """Masked residues cannot seed: the point of the filter."""
        from repro.index.kmer import BankIndex, ContiguousSeedModel
        from repro.seqs.sequence import Sequence, SequenceBank

        seq = np.concatenate(
            [random_protein(rng, 50), encode_protein("A" * 40), random_protein(rng, 50)]
        )
        bank = SequenceBank([Sequence("s", seq)], pad=16)
        masked, _ = mask_bank(bank)
        before = BankIndex(bank, ContiguousSeedModel(4)).n_anchors
        after = BankIndex(masked, ContiguousSeedModel(4)).n_anchors
        assert after < before
