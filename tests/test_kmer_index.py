"""Two-bank W-mer index tests (step 1)."""

import numpy as np
import pytest

from repro.index.kmer import BankIndex, ContiguousSeedModel, TwoBankIndex, extract_keys
from repro.seqs.alphabet import AMINO
from repro.seqs.sequence import Sequence, SequenceBank


def bank(*texts, pad=8):
    return SequenceBank(
        [Sequence.from_text(f"s{i}", t) for i, t in enumerate(texts)], pad=pad
    )


class TestSeedModel:
    def test_key_space(self):
        assert ContiguousSeedModel(4).key_space == 160_000
        assert ContiguousSeedModel(3).key_space == 8_000

    def test_key_of_distinct_words(self):
        m = ContiguousSeedModel(3)
        k1 = m.key_of(AMINO.encode("MKV"))
        k2 = m.key_of(AMINO.encode("MKW"))
        k3 = m.key_of(AMINO.encode("KVM"))
        assert len({k1, k2, k3}) == 3

    def test_key_of_invalid_window(self):
        m = ContiguousSeedModel(3)
        assert m.key_of(AMINO.encode("MK*")) == -1
        assert m.key_of(AMINO.encode("MKX")) == -1

    def test_position_order_matters(self):
        m = ContiguousSeedModel(2)
        assert m.key_of(AMINO.encode("AR")) != m.key_of(AMINO.encode("RA"))


class TestExtractKeys:
    def test_validity_mask(self):
        m = ContiguousSeedModel(3)
        buf = AMINO.encode("MKVXAWT")
        keys, valid = extract_keys(buf, m)
        assert valid.shape == (5,)
        # Windows containing X (positions 1,2,3) are invalid.
        assert list(valid) == [True, False, False, False, True]

    def test_too_short(self):
        keys, valid = extract_keys(AMINO.encode("MK"), ContiguousSeedModel(3))
        assert keys.shape == (0,)

    def test_keys_are_base20(self):
        m = ContiguousSeedModel(2)
        keys, valid = extract_keys(AMINO.encode("AR"), m)
        assert valid[0]
        assert keys[0] == 0 * 20 + 1  # A=0, R=1


class TestBankIndex:
    def test_every_anchor_indexed_once(self):
        b = bank("MKVLAW", "VLAWMK")
        idx = BankIndex(b, ContiguousSeedModel(3))
        assert idx.n_anchors == 4 + 4  # (6-3+1) per sequence

    def test_list_for_finds_occurrences(self):
        b = bank("MKVMKV")
        m = ContiguousSeedModel(3)
        idx = BankIndex(b, m)
        key = m.key_of(AMINO.encode("MKV"))
        offs = idx.list_for(key)
        assert offs.shape == (2,)
        # Both offsets decode back to MKV.
        for o in offs:
            assert AMINO.decode(b.buffer[o : o + 3]) == "MKV"

    def test_list_for_missing_key(self):
        b = bank("MKVLAW")
        idx = BankIndex(b, ContiguousSeedModel(3))
        assert idx.list_for(ContiguousSeedModel(3).key_of(AMINO.encode("WWW"))).size == 0

    def test_no_cross_boundary_windows(self):
        # Seeds never straddle two sequences thanks to padding.
        b = bank("MKV", "LAW", pad=4)
        idx = BankIndex(b, ContiguousSeedModel(3))
        assert idx.n_anchors == 2
        for i in range(len(idx.unique_keys)):
            for o in idx.slice(i):
                sid = b.seq_id_of(np.array([o]))[0]
                assert b.local_position(np.array([o]))[0] + 3 <= b.lengths[sid]

    def test_list_lengths_sum(self):
        b = bank("MKVLAWMKVLAW")
        idx = BankIndex(b, ContiguousSeedModel(4))
        assert int(idx.list_lengths().sum()) == idx.n_anchors

    def test_empty_bank(self):
        b = SequenceBank([], pad=4)
        idx = BankIndex(b, ContiguousSeedModel(3))
        assert idx.n_anchors == 0
        assert idx.unique_keys.shape == (0,)

    def test_memory_bytes_positive(self):
        b = bank("MKVLAW")
        assert BankIndex(b, ContiguousSeedModel(3)).memory_bytes() > 0


class TestTwoBankIndex:
    def test_shared_entries_are_true_joins(self):
        b0 = bank("MKVLAW")
        b1 = bank("AWMKVL", "MKVRRR")
        tbi = TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))
        for entry in tbi.entries():
            w0s = {AMINO.decode(b0.buffer[o : o + 3]) for o in entry.offsets0}
            w1s = {AMINO.decode(b1.buffer[o : o + 3]) for o in entry.offsets1}
            assert len(w0s) == 1 and w0s == w1s

    def test_total_pairs_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        from repro.seqs.generate import random_protein_bank

        b0 = random_protein_bank(rng, 6, mean_length=80)
        b1 = random_protein_bank(rng, 6, mean_length=80)
        m = ContiguousSeedModel(2)
        tbi = TwoBankIndex.build(b0, b1, m)
        # Brute force: count equal 2-mers across banks.
        keys0, valid0 = extract_keys(b0.buffer, m)
        keys1, valid1 = extract_keys(b1.buffer, m)
        k0 = keys0[valid0]
        k1 = keys1[valid1]
        brute = sum(int((k1 == k).sum()) * int((k0 == k).sum()) for k in np.unique(k0))
        assert tbi.total_pairs == brute

    def test_pair_counts_align_with_entries(self):
        b0 = bank("MKVMKV")
        b1 = bank("MKVMKVMKV")
        tbi = TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))
        counts = tbi.pair_counts()
        entries = list(tbi.entries())
        assert [e.pair_count for e in entries] == list(counts)

    def test_entry_accessor_matches_iterator(self):
        b0 = bank("MKVLAWTRQ")
        b1 = bank("KVLAWTR")
        tbi = TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))
        for j, e in enumerate(tbi.entries()):
            e2 = tbi.entry(j)
            assert e2.key == e.key
            assert np.array_equal(e2.offsets0, e.offsets0)
            assert np.array_equal(e2.offsets1, e.offsets1)

    def test_mismatched_models_rejected(self):
        b0 = bank("MKVLAW")
        b1 = bank("MKVLAW")
        i0 = BankIndex(b0, ContiguousSeedModel(3))
        i1 = BankIndex(b1, ContiguousSeedModel(4))
        with pytest.raises(ValueError, match="same seed model"):
            TwoBankIndex(i0, i1)

    def test_no_shared_keys(self):
        b0 = bank("MMMMMM")
        b1 = bank("WWWWWW")
        tbi = TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))
        assert tbi.n_shared_keys == 0
        assert tbi.total_pairs == 0
        assert list(tbi.entries()) == []
