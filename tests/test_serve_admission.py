"""Admission queue tests: bounded depth, shed accounting, tickets."""

import pytest

from repro.obs import metrics as obsmetrics
from repro.obs import trace
from repro.serve.admission import AdmissionQueue, Ticket


def make_ticket(i=0, deadline_at=None):
    # queries may be any payload object for queue-level tests
    return Ticket(i, object(), deadline_at=deadline_at)


class TestTicket:
    def test_unbounded_ticket_never_expires(self):
        t = make_ticket()
        assert not t.expired()
        assert t.remaining() is None

    def test_deadline_ticket_expires(self):
        t = make_ticket(deadline_at=trace.clock() - 0.1)
        assert t.expired()
        assert t.remaining() == 0.0
        t2 = make_ticket(deadline_at=trace.clock() + 60)
        assert not t2.expired()
        assert 0 < t2.remaining() <= 60

    def test_carries_max_alignments(self):
        t = Ticket(3, object(), max_alignments=7)
        assert t.max_alignments == 7
        assert t.status == "ok"


class TestAdmissionQueue:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0, obsmetrics.MetricsRegistry())

    def test_fifo_admit_and_take(self):
        q = AdmissionQueue(4, obsmetrics.MetricsRegistry())
        tickets = [make_ticket(i) for i in range(3)]
        assert all(q.offer(t) for t in tickets)
        taken = [q.take(timeout=0.1) for _ in range(3)]
        assert [t.request_index for t in taken] == [0, 1, 2]
        assert q.empty()

    def test_full_queue_sheds_and_counts(self):
        registry = obsmetrics.MetricsRegistry()
        q = AdmissionQueue(2, registry)
        assert q.offer(make_ticket(0))
        assert q.offer(make_ticket(1))
        assert not q.offer(make_ticket(2))
        assert registry.counter("serve_shed_total").value == 1
        # the admitted two are still served in order
        assert q.take(timeout=0.1).request_index == 0

    def test_force_shed_is_the_fault_injection_point(self):
        registry = obsmetrics.MetricsRegistry()
        q = AdmissionQueue(8, registry)
        assert not q.offer(make_ticket(0), force_shed=True)
        assert registry.counter("serve_shed_total").value == 1
        assert q.empty()

    def test_take_times_out_to_none(self):
        q = AdmissionQueue(2, obsmetrics.MetricsRegistry())
        assert q.take(timeout=0.01) is None

    def test_depth_gauge_tracks_high_water(self):
        registry = obsmetrics.MetricsRegistry()
        q = AdmissionQueue(4, registry)
        for i in range(3):
            q.offer(make_ticket(i))
        assert registry.gauge("serve_queue_depth").value == 3

    def test_queue_wait_histogram_observes_on_take(self):
        registry = obsmetrics.MetricsRegistry()
        q = AdmissionQueue(2, registry)
        q.offer(make_ticket(0))
        q.take(timeout=0.1)
        hist = registry.histogram(
            "serve_queue_wait_seconds", boundaries=obsmetrics.SECONDS_BUCKETS
        )
        assert hist.samples == 1
