"""Runtime dtype/shape contract tests (REPRO_CONTRACTS gating)."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    ENV_VAR,
    ArraySpec,
    ContractError,
    check_array,
    contracted,
    contracts_enabled,
)
from repro.extend.batched import BatchedUngappedEngine
from repro.extend.ungapped import UngappedConfig, ungapped_scores_paired
from repro.seqs.alphabet import GAP_CODE, encode_protein


@pytest.fixture
def enabled(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")


@pytest.fixture
def disabled(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


def make_buffers():
    """Two padded bank buffers with one perfect seed pair at offset 20."""
    pad = np.full(20, GAP_CODE, dtype=np.uint8)
    body = encode_protein("MKVLAWTRQMKVLAW")
    buf = np.concatenate([pad, body, pad])
    return buf, buf.copy()


class TestGating:
    def test_disabled_by_default(self, disabled):
        assert not contracts_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", "on"])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        assert contracts_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        assert not contracts_enabled()


class TestArraySpec:
    def test_dtype_mismatch(self):
        spec = ArraySpec(dtype=np.uint8)
        with pytest.raises(ContractError, match="dtype"):
            spec.validate("x", np.zeros(3, dtype=np.int32), {})

    def test_dtype_alternatives(self):
        spec = ArraySpec(dtype=(np.int32, np.int64))
        spec.validate("x", np.zeros(3, dtype=np.int64), {})

    def test_ndim_mismatch(self):
        spec = ArraySpec(ndim=1)
        with pytest.raises(ContractError, match="ndim"):
            spec.validate("x", np.zeros((2, 2)), {})

    def test_fixed_axis_mismatch(self):
        spec = ArraySpec(shape=(3,))
        with pytest.raises(ContractError, match="axis 0"):
            spec.validate("x", np.zeros(4), {})

    def test_named_dim_unifies_across_arrays(self):
        spec = ArraySpec(shape=("pairs",))
        dims = {}
        spec.validate("a", np.zeros(5), dims)
        with pytest.raises(ContractError, match="'pairs'"):
            spec.validate("b", np.zeros(6), dims)

    def test_not_an_array(self):
        with pytest.raises(ContractError, match="ndarray"):
            ArraySpec().validate("x", [1, 2, 3], {})

    def test_contradictory_rank(self):
        with pytest.raises(ValueError):
            ArraySpec(ndim=2, shape=(3,))


class TestCheckArray:
    def test_noop_when_disabled(self, disabled):
        check_array("x", np.zeros(3, dtype=np.float64), ArraySpec(dtype=np.uint8))

    def test_raises_when_enabled(self, enabled):
        with pytest.raises(ContractError):
            check_array("x", np.zeros(3, dtype=np.float64), ArraySpec(dtype=np.uint8))


class TestBatchedKernelContracts:
    def test_kernel_is_contracted(self):
        assert getattr(ungapped_scores_paired, "__repro_contracted__", False)
        assert getattr(BatchedUngappedEngine.run_stream, "__repro_contracted__", False)

    def test_wrong_dtype_buffer_rejected(self, enabled):
        buf0, buf1 = make_buffers()
        entries = [(np.array([20], dtype=np.int64), np.array([20], dtype=np.int64))]
        engine = BatchedUngappedEngine(UngappedConfig(w=4, n=4, threshold=1))
        with pytest.raises(ContractError, match="buf0"):
            engine.run_stream(buf0.astype(np.float64), buf1, entries)

    def test_wrong_dtype_anchors_rejected(self, enabled):
        buf0, buf1 = make_buffers()
        a = np.array([20], dtype=np.int32)
        b = np.array([20], dtype=np.int64)
        with pytest.raises(ContractError, match="anchors0"):
            ungapped_scores_paired(buf0, a, buf1, b, 4, 12)

    def test_pair_length_mismatch_rejected(self, enabled):
        buf0, buf1 = make_buffers()
        a = np.array([20, 21], dtype=np.int64)
        b = np.array([20], dtype=np.int64)
        with pytest.raises(ContractError, match="pairs"):
            ungapped_scores_paired(buf0, a, buf1, b, 4, 12)

    def test_valid_call_passes_and_scores(self, enabled):
        buf0, buf1 = make_buffers()
        a = np.array([20], dtype=np.int64)
        b = np.array([20], dtype=np.int64)
        scores = ungapped_scores_paired(buf0, a, buf1, b, 4, 12)
        assert scores.dtype == np.int32
        assert scores.shape == (1,)
        assert scores[0] > 0

    def test_disabled_forwards_unchecked(self, disabled):
        # Without the env var the decorator must not even look at dtypes:
        # int32 anchors violate the contract but index arrays just fine.
        buf0, buf1 = make_buffers()
        a = np.array([20], dtype=np.int32)
        b = np.array([20], dtype=np.int32)
        scores = ungapped_scores_paired(buf0, a, buf1, b, 4, 12)
        assert scores.shape == (1,)
