"""repro-check CLI tests: exit codes, baseline flags, --github, verify mode."""

import json
import pathlib

import pytest

from repro.analysis.cli import main

REPO = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = REPO / "examples" / "data"


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


VIOLATING = "import numpy as np\nx = np.zeros(8)\n"


class TestExitCodes:
    def test_clean_is_zero(self, tmp_path):
        write(tmp_path, "ok.py", "def f(x: int) -> int:\n    return x\n")
        assert main(["-q", str(tmp_path)]) == 0

    def test_violation_is_one(self, tmp_path):
        write(tmp_path, "repro/extend/k.py", VIOLATING)
        assert main(["-q", str(tmp_path)]) == 1

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "does-not-exist")])
        assert exc.value.code == 2

    def test_select_unknown_code_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--select", "RC999", str(tmp_path)])
        assert exc.value.code == 2

    def test_select_restricts(self, tmp_path, capsys):
        write(tmp_path, "repro/extend/k.py", VIOLATING)
        assert main(["-q", "--select", "RC001", str(tmp_path)]) == 0
        assert main(["-q", "--select", "RC002", str(tmp_path)]) == 1

    def test_list_rules_includes_rc1xx(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RC001", "RC100", "RC101", "RC102", "RC103", "RC104"):
            assert code in out


class TestBaselineFlags:
    def test_write_then_check_roundtrip(self, tmp_path, capsys):
        write(tmp_path, "repro/extend/k.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["--write-baseline", str(baseline), str(tmp_path)]
        ) == 0
        data = json.loads(baseline.read_text())
        assert data["version"] == 1 and len(data["entries"]) == 1
        capsys.readouterr()
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_new_finding_still_fails(self, tmp_path):
        write(tmp_path, "repro/extend/k.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        main(["--write-baseline", str(baseline), str(tmp_path)])
        write(tmp_path, "repro/extend/k2.py", VIOLATING)
        assert main(["-q", "--baseline", str(baseline), str(tmp_path)]) == 1

    def test_stale_entry_is_reported(self, tmp_path, capsys):
        path = write(tmp_path, "repro/extend/k.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        main(["--write-baseline", str(baseline), str(tmp_path)])
        path.write_text("def f(x: int) -> int:\n    return x\n")
        capsys.readouterr()
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_missing_baseline_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--baseline", str(tmp_path / "nope.json"), str(tmp_path)])
        assert exc.value.code == 2


class TestGithubAnnotations:
    def test_error_lines_are_emitted(self, tmp_path, capsys):
        path = write(tmp_path, "repro/extend/k.py", VIOLATING)
        assert main(["-q", "--github", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        (annotation,) = [
            line for line in out.splitlines() if line.startswith("::error ")
        ]
        assert f"file={path}" in annotation
        assert "line=2" in annotation
        assert "RC002" in annotation

    def test_no_annotations_when_clean(self, tmp_path, capsys):
        write(tmp_path, "ok.py", "def f(x: int) -> int:\n    return x\n")
        assert main(["-q", "--github", str(tmp_path)]) == 0
        assert "::error" not in capsys.readouterr().out


class TestVerifyDeterminism:
    def test_smoke_on_examples_data(self, capsys):
        code = main(
            [
                "--verify-determinism",
                str(EXAMPLES / "demo_proteins.fasta"),
                str(EXAMPLES / "demo_genome.fasta"),
                "--workers",
                "1,2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "determinism verified across workers=1,2" in out
        assert "step2.merged" in out

    def test_missing_fasta_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "--verify-determinism",
                    str(tmp_path / "nope.fasta"),
                    str(tmp_path / "nope2.fasta"),
                ]
            )
        assert exc.value.code == 2

    def test_bad_workers_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "--verify-determinism",
                    str(EXAMPLES / "demo_proteins.fasta"),
                    str(EXAMPLES / "demo_genome.fasta"),
                    "--workers",
                    "zero,none",
                ]
            )
        assert exc.value.code == 2


class TestPruneBaseline:
    def test_requires_baseline_flag(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--prune-baseline", str(tmp_path)])
        assert exc.value.code == 2

    def test_drops_stale_keeps_live(self, tmp_path, capsys):
        live = write(tmp_path, "repro/extend/k.py", VIOLATING)
        stale = write(tmp_path, "repro/extend/k2.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        main(["--write-baseline", str(baseline), str(tmp_path)])
        stale.write_text("def f(x: int) -> int:\n    return x\n")
        capsys.readouterr()
        code = main(
            ["--baseline", str(baseline), "--prune-baseline", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 kept, 1 dropped" in out
        data = json.loads(baseline.read_text())
        assert len(data["entries"]) == 1
        assert data["entries"][0]["path"].endswith("k.py")
        assert live.exists()

    def test_tight_baseline_is_byte_identical_noop(self, tmp_path):
        write(tmp_path, "repro/extend/k.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        main(["--write-baseline", str(baseline), str(tmp_path)])
        before = baseline.read_text()
        assert main(
            ["-q", "--baseline", str(baseline), "--prune-baseline", str(tmp_path)]
        ) == 0
        assert baseline.read_text() == before


class TestVerifyAllocs:
    def test_missing_budget_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "--verify-allocs",
                    str(EXAMPLES / "demo_proteins.fasta"),
                    str(EXAMPLES / "demo_genome.fasta"),
                    "--allocs-budget",
                    str(tmp_path / "nope.json"),
                ]
            )
        assert exc.value.code == 2

    def test_missing_fasta_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "--verify-allocs",
                    str(tmp_path / "nope.fasta"),
                    str(tmp_path / "nope2.fasta"),
                ]
            )
        assert exc.value.code == 2

    def test_update_then_verify_roundtrip(self, tmp_path, capsys):
        budget = tmp_path / "budget.json"
        base = [
            "--verify-allocs",
            str(EXAMPLES / "demo_proteins.fasta"),
            str(EXAMPLES / "demo_genome.fasta"),
            "--workers",
            "2",
            "--allocs-budget",
            str(budget),
        ]
        assert main(base + ["--update-allocs-budget"]) == 0
        out = capsys.readouterr().out
        assert "wrote allocation budget" in out
        data = json.loads(budget.read_text())
        assert any(
            name.startswith("kernel.") and name.endswith(".score")
            for name in data["scopes"]
        )
        assert "step2.engine.run_stream" in data["scopes"]
        assert main(base) == 0
        assert "allocation budget verified" in capsys.readouterr().out

    def test_committed_budget_verifies(self, capsys):
        # The acceptance gate: the budget checked into the repo must hold
        # for the demo workload at the CI worker count.
        code = main(
            [
                "--verify-allocs",
                str(EXAMPLES / "demo_proteins.fasta"),
                str(EXAMPLES / "demo_genome.fasta"),
                "--workers",
                "2",
                "--allocs-budget",
                str(REPO / "allocsan-budget.json"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "allocation budget verified" in out
