"""Gapped extension (step 3) tests: X-drop engine vs Smith-Waterman oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extend.gapped import (
    GapPenalties,
    smith_waterman,
    xdrop_gapped_extend,
)
from repro.seqs.alphabet import encode_protein
from repro.seqs.generate import mutate_protein, random_protein
from repro.seqs.matrices import BLOSUM62


class TestGapPenalties:
    def test_defaults_are_blast(self):
        g = GapPenalties()
        assert (g.open, g.extend) == (11, 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            GapPenalties(open=-1)


class TestSmithWaterman:
    def test_self_alignment_is_diagonal_sum(self):
        a = encode_protein("MKVLAWTRQ")
        al = smith_waterman(a, a)
        assert al.aligned0 == "MKVLAWTRQ"
        assert al.aligned1 == "MKVLAWTRQ"
        assert al.score == sum(
            BLOSUM62.score(int(x), int(x)) for x in a
        )
        assert al.identity() == 1.0

    def test_local_alignment_trims_noise(self):
        a = encode_protein("PPPPWWWWCCCC")
        b = encode_protein("GGGGWWWWDDDD")
        al = smith_waterman(a, b)
        assert al.aligned0 == "WWWW"
        assert al.score == 44

    def test_gap_in_alignment(self):
        a = encode_protein("MKVLAWTRQ")
        b = encode_protein("MKVLWTRQ")  # A deleted
        al = smith_waterman(a, b)
        assert "-" in al.aligned1
        assert al.n_gaps == 1
        # score = self score of MKVLWTRQ (M5 K5 V4 L4 W11 T5 R5 Q5 = 44)
        # minus one gap open+extend (12)
        assert al.score == 44 - 12

    def test_affine_prefers_one_long_gap(self):
        # One 2-gap (cost 13) beats two 1-gaps (cost 24).
        a = encode_protein("WWWWCHWWWW")
        b = encode_protein("WWWWWWWW")
        al = smith_waterman(a, b)
        gap_cols = al.aligned1.count("-")
        assert gap_cols == 2
        assert al.score == 88 - 11 - 2 * 1

    def test_traceback_consistent_with_score(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = random_protein(rng, 60)
            b = mutate_protein(rng, a, identity=0.7, indel_rate=0.03)
            al = smith_waterman(a, b)
            # Re-score the traceback strings independently.
            from repro.seqs.alphabet import AMINO

            score = 0
            in_gap = False
            g = GapPenalties()
            for x, y in zip(al.aligned0, al.aligned1, strict=True):
                if x == "-" or y == "-":
                    score -= (g.open + g.extend) if not in_gap else g.extend
                    in_gap = True
                else:
                    score += BLOSUM62.score(
                        int(AMINO.encode(x)[0]), int(AMINO.encode(y)[0])
                    )
                    in_gap = False
            assert score == al.score

    def test_band_restricts_gaps(self):
        a = encode_protein("WWWWWWWW" + "CCCCCCCCCC")
        b = encode_protein("WWWWWWWW")
        full = smith_waterman(a, b)
        banded = smith_waterman(a, b, band=2)
        assert banded.score <= full.score

    def test_empty_sequences(self):
        al = smith_waterman(encode_protein(""), encode_protein("MKV"))
        assert al.score == 0
        assert al.aligned0 == ""


class TestXdropExtension:
    def test_matches_sw_on_clean_homology(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            core = random_protein(rng, 50)
            noise0 = random_protein(rng, 30)
            noise1 = random_protein(rng, 30)
            s0 = np.concatenate([noise0, core, noise0])
            s1 = np.concatenate([noise1, core, noise1])
            sw = smith_waterman(s0, s1)
            ge = xdrop_gapped_extend(s0, 30 + 25, s1, 30 + 25, x_drop=40)
            # X-drop anchored inside the homology must recover ≥ 95% of SW.
            assert ge.score >= 0.95 * sw.score

    def test_endpoints_bracket_anchor(self):
        rng = np.random.default_rng(3)
        core = random_protein(rng, 40)
        s0 = np.concatenate([random_protein(rng, 20), core, random_protein(rng, 20)])
        s1 = np.concatenate([random_protein(rng, 20), core, random_protein(rng, 20)])
        ge = xdrop_gapped_extend(s0, 40, s1, 40, x_drop=30)
        assert ge.start0 <= 40 <= ge.end0
        assert ge.start1 <= 40 <= ge.end1
        assert ge.length0 > 0 and ge.length1 > 0

    def test_cells_bounded_by_full_dp(self):
        rng = np.random.default_rng(4)
        a = random_protein(rng, 100)
        b = random_protein(rng, 100)
        ge = xdrop_gapped_extend(a, 50, b, 50, x_drop=15)
        assert 0 < ge.cells < 100 * 100

    def test_smaller_xdrop_never_scores_higher(self):
        rng = np.random.default_rng(5)
        a = random_protein(rng, 120)
        b = mutate_protein(rng, a, identity=0.6)
        lo = xdrop_gapped_extend(a, 60, b, min(60, len(b) - 1), x_drop=5)
        hi = xdrop_gapped_extend(a, 60, b, min(60, len(b) - 1), x_drop=60)
        assert hi.score >= lo.score

    def test_gap_sentinels_contain_extension(self):
        s = encode_protein("----MKVLAWTRQ----")
        ge = xdrop_gapped_extend(s, 8, s, 8, x_drop=25)
        assert ge.start0 >= 4
        assert ge.end0 <= 13

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_xdrop_never_beats_smith_waterman(self, seed):
        """SW is the exact optimum; X-drop is a heuristic lower bound."""
        rng = np.random.default_rng(seed)
        a = random_protein(rng, 40)
        b = mutate_protein(rng, a, identity=0.65, indel_rate=0.02)
        anchor = min(20, len(b) - 1)
        sw = smith_waterman(a, b)
        ge = xdrop_gapped_extend(a, 20, b, anchor, x_drop=50)
        assert ge.score <= sw.score
