"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import split_bank
from repro.extend.gapped import GapPenalties, smith_waterman
from repro.extend.ungapped import (
    ScoreSemantics,
    ungapped_score_reference,
    ungapped_scores_paired,
)
from repro.index.kmer import BankIndex, ContiguousSeedModel, extract_keys
from repro.index.subset_seed import SubsetSeedModel
from repro.psc.schedule import PscArrayConfig, drain_completion, schedule_cycles
from repro.seqs.alphabet import AMINO
from repro.seqs.lowcomplexity import seg_mask
from repro.seqs.sequence import Sequence, SequenceBank
from repro.seqs.translate import STANDARD_CODE, reverse_complement

proteins = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=120)
seeds = st.integers(0, 2**32 - 1)


@given(proteins.filter(lambda t: len(t) >= 4))
@settings(max_examples=50, deadline=None)
def test_index_is_complete_and_sound(text):
    """Every valid window is indexed exactly once, at the right offset."""
    bank = SequenceBank([Sequence.from_text("s", text)], pad=8)
    model = ContiguousSeedModel(4)
    idx = BankIndex(bank, model)
    keys, valid = extract_keys(bank.buffer, model)
    assert idx.n_anchors == int(valid.sum())
    for i in range(len(idx.unique_keys)):
        for off in idx.slice(i):
            k, v = extract_keys(bank.buffer[off : off + 4], model)
            assert v[0] and int(k[0]) == int(idx.unique_keys[i])


@given(seeds, st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_paired_kernel_matches_reference(seed, width):
    rng = np.random.default_rng(seed)
    buf = rng.integers(0, 25, 500).astype(np.uint8)
    n = 8
    flank = 3
    a0 = rng.integers(flank, 500 - width, n)
    a1 = rng.integers(flank, 500 - width, n)
    scores = ungapped_scores_paired(buf, a0, buf, a1, flank, width)
    for i in range(n):
        w0 = buf[a0[i] - flank : a0[i] - flank + width]
        w1 = buf[a1[i] - flank : a1[i] - flank + width]
        assert scores[i] == ungapped_score_reference(w0, w1)


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_window_score_invariants(seed):
    """Scores are non-negative, symmetric and bounded by the self-score."""
    rng = np.random.default_rng(seed)
    L = int(rng.integers(1, 40))
    a = rng.integers(0, 20, L).astype(np.uint8)
    b = rng.integers(0, 20, L).astype(np.uint8)
    s_ab = ungapped_score_reference(a, b)
    s_ba = ungapped_score_reference(b, a)
    assert s_ab >= 0
    assert s_ab == s_ba  # BLOSUM symmetry
    assert s_ab <= max(
        ungapped_score_reference(a, a), ungapped_score_reference(b, b)
    )
    lit = ungapped_score_reference(a, b, semantics=ScoreSemantics.PAPER_LITERAL)
    assert lit >= s_ab


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_smith_waterman_invariants(seed):
    """SW: non-negative, symmetric, self-score maximal for its row."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 20, int(rng.integers(1, 50))).astype(np.uint8)
    b = rng.integers(0, 20, int(rng.integers(1, 50))).astype(np.uint8)
    ab = smith_waterman(a, b)
    ba = smith_waterman(b, a)
    assert ab.score == ba.score
    assert ab.score >= 0
    assert ab.score <= smith_waterman(a, a).score or len(b) > len(a)
    # Gap penalties monotone: cheaper gaps never lower the score.
    cheap = smith_waterman(a, b, gaps=GapPenalties(5, 1)).score
    assert cheap >= ab.score


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_schedule_monotonicity(seed):
    """More work never takes fewer cycles; more PEs never more compute."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 30))
    k0 = rng.integers(1, 100, n)
    k1 = rng.integers(1, 100, n)
    cfg_small = PscArrayConfig(n_pes=32, slot_size=8, window=28)
    cfg_big = PscArrayConfig(n_pes=128, slot_size=8, window=28)
    b_small = schedule_cycles(k0, k1, cfg_small)
    b_big = schedule_cycles(k0, k1, cfg_big)
    assert b_big.compute_cycles <= b_small.compute_cycles
    grown = schedule_cycles(k0 + 1, k1, cfg_small)
    assert grown.schedule_end > b_small.schedule_end


@given(st.lists(st.integers(0, 10_000), min_size=0, max_size=200), st.integers(0, 12_000))
@settings(max_examples=50, deadline=None)
def test_drain_completion_properties(arrivals, schedule_end):
    """Drain: ≥ schedule end, ≥ arrivals + 1, and serves 1/cycle."""
    arr = np.array(sorted(arrivals), dtype=np.int64)
    done = drain_completion(arr, schedule_end)
    assert done >= schedule_end
    if arr.size:
        assert done >= int(arr.max()) + 1
        assert done >= int(arr.min()) + arr.size  # single server lower bound


@given(proteins)
@settings(max_examples=50, deadline=None)
def test_seg_mask_idempotent_and_conservative(text):
    codes = AMINO.encode(text)
    once, f1 = seg_mask(codes)
    twice, f2 = seg_mask(once)
    assert np.array_equal(once, twice)
    assert len(once) == len(codes)
    # Masking only ever rewrites residues to X.
    changed = once != codes
    assert (once[changed] == AMINO.encode("X")[0]).all()


@given(st.text(alphabet="ACGT", min_size=0, max_size=300))
@settings(max_examples=50, deadline=None)
def test_translation_reading_frame_shift(text):
    """Dropping one leading base turns frame +2 into frame +1."""
    from repro.seqs.alphabet import DNA

    nt = DNA.encode(text)
    if len(nt) < 4:
        return
    f2 = STANDARD_CODE.translate_codes(nt[1:])
    from repro.seqs.translate import translate

    assert np.array_equal(translate(nt, 2), f2)
    # Reverse complement is an involution (checked end to end).
    assert np.array_equal(reverse_complement(reverse_complement(nt)), nt)


@given(seeds, st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_split_bank_partition_property(seed, n_parts):
    from repro.seqs.generate import random_protein_bank

    rng = np.random.default_rng(seed)
    bank = random_protein_bank(rng, int(rng.integers(1, 25)), mean_length=60)
    parts = split_bank(bank, n_parts)
    assert len(parts) == n_parts
    names = sorted(n for p in parts for n in p.names)
    assert names == sorted(bank.names)
    assert sum(p.total_residues for p in parts) == bank.total_residues


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_subset_seed_keys_coarser_than_exact(seed):
    """If two windows share an exact key they share every subset key."""
    rng = np.random.default_rng(seed)
    w = rng.integers(0, 20, 4).astype(np.uint8)
    exact = ContiguousSeedModel(4)
    subset = SubsetSeedModel.from_pattern("#11#")
    k_e, v_e = extract_keys(w, exact)
    k_s, v_s = extract_keys(w, subset)
    assert v_e[0] and v_s[0]
    # Same window always produces the same keys (determinism) and any
    # exact-equal pair is subset-equal.
    w2 = w.copy()
    k_e2, _ = extract_keys(w2, exact)
    k_s2, _ = extract_keys(w2, subset)
    assert k_e[0] == k_e2[0] and k_s[0] == k_s2[0]


@given(
    st.lists(st.booleans(), max_size=120),
    st.integers(1, 20),
)
@settings(max_examples=60, deadline=None)
def test_roc50_bounds_and_monotonicity(labels, n_positives):
    """ROC50 lies in [0, 1+] bounded by TPs/P, and prepending a TP never
    lowers the score."""
    from repro.eval.roc import roc50

    tp_count = sum(labels)
    score = roc50(labels, max(n_positives, tp_count, 1))
    assert 0.0 <= score <= 1.0
    better = roc50([True] + list(labels), max(n_positives, tp_count + 1, 1))
    worse = roc50([False] + list(labels), max(n_positives, tp_count, 1))
    assert worse <= score + 1e-12


@given(st.lists(st.booleans(), max_size=80))
@settings(max_examples=60, deadline=None)
def test_average_precision_bounds(labels):
    from repro.eval.ap import average_precision

    ap = average_precision(labels)
    assert 0.0 <= ap <= 1.0
    # Perfect prefix ordering is optimal.
    ordered = sorted(labels, reverse=True)
    assert average_precision(ordered) >= ap - 1e-12


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_flat_kernel_equals_outer_kernel(seed):
    """The paired (flat) kernel and the outer-product kernel agree on
    every pair they both score."""
    from repro.extend.ungapped import ungapped_scores

    rng = np.random.default_rng(seed)
    k0, k1, flank, span = 4, 5, 4, 3
    window = span + 2 * flank
    buf0 = rng.integers(0, 25, 300).astype(np.uint8)
    buf1 = rng.integers(0, 25, 300).astype(np.uint8)
    a0 = rng.integers(flank, 300 - window, k0)
    a1 = rng.integers(flank, 300 - window, k1)
    w0 = np.stack([buf0[a - flank : a - flank + window] for a in a0])
    w1 = np.stack([buf1[a - flank : a - flank + window] for a in a1])
    outer = ungapped_scores(w0, w1)
    flat0 = np.repeat(a0, k1)
    flat1 = np.tile(a1, k0)
    flat = ungapped_scores_paired(buf0, flat0, buf1, flat1, flank, window)
    assert np.array_equal(outer.ravel(), flat)


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_gxp_wavefront_band_consistency(seed):
    """Unbanded SW dominates every banded wavefront score."""
    from repro.extend.gapped import smith_waterman
    from repro.psc.gapped_operator import wavefront_banded_score

    rng = np.random.default_rng(seed)
    a = rng.integers(0, 20, int(rng.integers(1, 40))).astype(np.uint8)
    b = rng.integers(0, 20, int(rng.integers(1, 40))).astype(np.uint8)
    full = smith_waterman(a, b).score
    banded, _ = wavefront_banded_score(a, b, band=int(rng.integers(1, 10)))
    assert banded <= full
