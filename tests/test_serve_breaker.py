"""Circuit breaker unit tests: trip, dwell, probe, recovery."""

import pytest

from repro.serve.breaker import (
    STATE_VALUES,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)


class TestConfig:
    def test_defaults(self):
        cfg = BreakerConfig()
        assert cfg.failure_threshold == 3
        assert cfg.reset_seconds == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(reset_seconds=-1.0)


class TestTrip:
    def test_starts_closed_and_allows_pool(self):
        b = CircuitBreaker()
        assert b.state is BreakerState.CLOSED
        assert b.allows_pool()
        assert b.trips == 0

    def test_consecutive_failures_trip_at_threshold(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=3, reset_seconds=60))
        b.record_failure()
        b.record_failure()
        assert b.state is BreakerState.CLOSED
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert not b.allows_pool()
        assert b.trips == 1

    def test_success_resets_the_streak(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=2, reset_seconds=60))
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state is BreakerState.CLOSED
        b.record_failure()
        assert b.state is BreakerState.OPEN


class TestHalfOpen:
    def test_open_half_opens_after_dwell(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, reset_seconds=0.0))
        b.record_failure()
        # reset_seconds=0: the next state read is already due for a probe
        assert b.state is BreakerState.HALF_OPEN
        assert b.allows_pool()  # exactly one probe flows (dispatcher serial)

    def test_probe_success_closes(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, reset_seconds=0.0))
        b.record_failure()
        assert b.state is BreakerState.HALF_OPEN
        b.record_success()
        assert b.state is BreakerState.CLOSED

    def test_probe_failure_reopens_and_counts_a_trip(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, reset_seconds=0.0))
        b.record_failure()
        assert b.trips == 1
        assert b.state is BreakerState.HALF_OPEN
        b.record_failure()
        # a single probe failure re-opens immediately, below the threshold
        assert b.trips == 2
        # internal state is OPEN again; with zero dwell the property
        # surfaces the next probe window
        assert b.state is BreakerState.HALF_OPEN

    def test_open_stays_open_inside_dwell(self):
        b = CircuitBreaker(BreakerConfig(failure_threshold=1, reset_seconds=60))
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert not b.allows_pool()


class TestGaugeEncoding:
    def test_every_state_has_a_stable_value(self):
        assert STATE_VALUES[BreakerState.CLOSED] == 0
        assert STATE_VALUES[BreakerState.OPEN] == 1
        assert STATE_VALUES[BreakerState.HALF_OPEN] == 2
        assert set(STATE_VALUES) == set(BreakerState)
