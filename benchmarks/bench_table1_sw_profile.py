"""Table 1 — % of time per step of the sequential software algorithm.

Paper: comparing 30 000 proteins against Human chromosome 1, the software
implementation spends 0.3 % in indexing, 97 % in ungapped extension and
2.7 % in gapped extension.  We reproduce the percentages from modelled
step times (measured operation counts × calibrated Itanium2 constants) and
also report the raw wall-clock split of this Python implementation on the
functional workload for reference.
"""

from __future__ import annotations

from harness import BANK_LABELS, PAPER_TABLE1, get_model, write_table
from repro.util.reporting import TextTable


def build_table(model) -> TextTable:
    """Render Table 1 (extended to all four bank sizes)."""
    t = TextTable(
        "Table 1 — software per-step time shares",
        ["bank", "step 1", "step 2", "step 3", "paper (30K)"],
    )
    for label in BANK_LABELS:
        steps = model.software_steps(label)
        f1, f2, f3 = steps.fractions()
        paper = (
            f"{PAPER_TABLE1[0]}% / {PAPER_TABLE1[1]}% / {PAPER_TABLE1[2]}%"
            if label == "30K"
            else "—"
        )
        t.add_row(label, f"{f1:.1%}", f"{f2:.1%}", f"{f3:.1%}", paper)
    t.add_note(
        "host constants calibrated on the paper's 30K anchors; the 30K row "
        "shape is therefore by construction, the other rows are predictions"
    )
    return t


def test_table1_software_profile(paper_model, benchmark):
    """Benchmark the profile computation; emit the table."""
    steps = benchmark(paper_model.software_steps, "30K")
    f1, f2, f3 = steps.fractions()
    # Shape check against the paper: step 2 dominates overwhelmingly.
    assert f2 > 0.90
    assert f1 < 0.02
    assert f3 < 0.08
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("table1_sw_profile", table.render())


if __name__ == "__main__":
    print(build_table(get_model()).render())
