"""Extension — the paper's proposed dual-design deployment, quantified.

The conclusion of the paper sketches its own future work: with step 2
accelerated, gapped extension dominates (Table 7), so (a) build a second
reconfigurable operator for gapped extension on the other FPGA, and
(b) rebalance the remaining host work across upcoming multi-core CPUs.

This bench implements both proposals on the simulator and projects the
30K-bank workload: PSC (192 PEs) on FPGA 0, the GXP banded-alignment
operator on FPGA 1, host steps under an Amdahl multi-core model — then
prints the projected end-to-end time next to the paper's measured
single-design 3 667 s, showing where the bottleneck moves next.
"""

from __future__ import annotations

from harness import BANK_LABELS, PAPER_RASC_TOTAL, get_model, write_table
from repro.psc.gapped_operator import GxpConfig, GxpOperator
from repro.rasc.dual_design import HostDispatch
from repro.util.reporting import TextTable


def project(model, label: str, n_cores: int, gxp_units: int):
    """(step1, step2, step3, total) seconds for one deployment point."""
    dispatch = HostDispatch(n_cores=n_cores)
    sw = model.software_steps(label)
    step1 = dispatch.seconds(sw.step1)
    step2 = model.accel_step2_seconds(label, 192)
    gxp = GxpOperator(GxpConfig(n_units=gxp_units))
    extensions = int(model.step2_hits(label) * model.rates.gapped_per_hit)
    gxp_seconds = gxp.modeled_seconds(extensions)
    # Host keeps final statistics/traceback for reported alignments only
    # (~the reported fraction of extensions; generously 10 % of old step3).
    host_tail = dispatch.seconds(0.1 * sw.step3)
    # PSC and GXP overlap (streamed); host tail follows.
    accel = max(step2, gxp_seconds)
    return step1, accel, gxp_seconds, host_tail, step1 + accel + host_tail


def build_table(model) -> TextTable:
    """Render the dual-design projection."""
    t = TextTable(
        "Extension — dual-design RASC (PSC + GXP) projection, 192 PEs",
        ["bank", "paper 1-design total", "dual 1-core", "dual 4-core",
         "GXP time (8 units)", "speedup vs paper design"],
    )
    for label in BANK_LABELS:
        paper = PAPER_RASC_TOTAL[192][label]
        *_, total1 = project(model, label, n_cores=1, gxp_units=8)
        _, _, gxp_s, _, total4 = project(model, label, n_cores=4, gxp_units=8)
        t.add_row(
            label,
            f"{paper:,}",
            f"{total1:,.0f}",
            f"{total4:,.0f}",
            f"{gxp_s:,.1f}",
            f"{paper / total4:.2f}×",
        )
    t.add_note(
        "GXP absorbs step 3 almost entirely; with 4 host cores the new "
        "bottleneck is step 2 itself — answering the paper's closing "
        "dispatch question"
    )
    return t


def test_extension_dual_design(paper_model, benchmark):
    """Project the dual design; verify the bottleneck shift."""
    benchmark(project, paper_model, "30K", 4, 8)
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("extension_dual_design", table.render())
    s1, accel, gxp_s, tail, total = project(paper_model, "30K", 4, 8)
    # GXP removes the step-3 wall: it runs far faster than host step 3…
    assert gxp_s < 0.1 * paper_model.software_steps("30K").step3
    # …and hides entirely behind PSC compute.
    assert accel == paper_model.accel_step2_seconds("30K", 192)
    # End-to-end beats the paper's measured single-design deployment.
    assert total < PAPER_RASC_TOTAL[192]["30K"]


if __name__ == "__main__":
    print(build_table(get_model()).render())
