"""Step-2 scaling benchmark: scalar → per-key → batched → sharded.

Measures the software step-2 engines on one synthetic workload and writes
``BENCH_step2.json`` so the perf trajectory of the hot path (97 % of
sequential runtime, paper Table 1) is tracked from PR to PR:

* ``scalar`` — :func:`ungapped_score_reference` driven pair by pair (the
  PE datapath in pure Python; measured on a capped pair sample and
  reported as a rate);
* ``per_key`` — one vectorised ``K0 × K1`` kernel call per shared index
  key (:meth:`UngappedExtender.run_per_key`);
* ``batched`` — the flat cross-entry batch engine
  (:class:`~repro.extend.batched.BatchedUngappedEngine` via the executor
  at ``workers=1``);
* ``batched_xN`` — the sharded multiprocess executor at each requested
  worker count (run with ``min_pairs_per_shard=0`` so the pool really
  spawns — the executor's default heuristic would route this sub-floor
  workload in-process, which is the production fix for the 2-worker
  regression this benchmark first exposed);
* the **backend registry sweep** — every registered step-2 kernel backend
  (:mod:`repro.extend.backends`) timed through the batched engine on the
  same workload, checked bit-identical against ``batched``, and emitted as
  the per-backend matrix ``report["backends"]``.

All full-workload modes are checked for bit-identical hit sets before the
JSON is written.  Run directly (``python benchmarks/bench_step2_scaling.py
[--quick]``) or via pytest, where a smoke-scale invocation asserts the
modes agree.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.analysis import allocsan
from repro.core.executor import ShardedStep2Executor
from repro.extend.backends import list_backends
from repro.extend.batched import BatchedUngappedEngine
from repro.extend.ungapped import (
    UngappedConfig,
    UngappedExtender,
    ungapped_score_reference,
)
from repro.index.kmer import TwoBankIndex
from repro.index.subset_seed import DEFAULT_SUBSET_SEED
from repro.obs import metrics as obsmetrics
from repro.obs import trace
from repro.obs.export import build_run_report
from repro.seqs.generate import random_protein_bank

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_step2.json"

#: Pairs scored by the scalar oracle before extrapolating its rate.
SCALAR_PAIR_CAP = 1_500


def build_workload(quick: bool, seed: int = 2009):
    """Synthetic two-bank workload sized so per-key overhead is visible."""
    rng = np.random.default_rng(seed)
    n0, n1, mean = (60, 120, 160) if quick else (200, 400, 220)
    bank0 = random_protein_bank(rng, n0, mean_length=mean, name_prefix="q")
    bank1 = random_protein_bank(rng, n1, mean_length=mean, name_prefix="s")
    index = TwoBankIndex.build(bank0, bank1, DEFAULT_SUBSET_SEED)
    return bank0, bank1, index


def _time(fn, repeats: int = 1):
    """Best-of-*repeats* wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def measure_scalar(index: TwoBankIndex, cfg: UngappedConfig) -> dict:
    """Scalar reference on a capped pair sample, extrapolated to a rate."""
    buf0 = index.index0.bank.buffer
    buf1 = index.index1.bank.buffer
    window = cfg.window
    scored = 0
    t0 = time.perf_counter()
    for entry in index.entries():
        for o0 in entry.offsets0:
            a0 = int(o0) - cfg.n
            for o1 in entry.offsets1:
                a1 = int(o1) - cfg.n
                ungapped_score_reference(
                    buf0[a0 : a0 + window], buf1[a1 : a1 + window],
                    cfg.matrix, cfg.semantics,
                )
                scored += 1
                if scored >= SCALAR_PAIR_CAP:
                    break
            if scored >= SCALAR_PAIR_CAP:
                break
        if scored >= SCALAR_PAIR_CAP:
            break
    wall = time.perf_counter() - t0
    rate = scored / wall if wall > 0 else 0.0
    total = index.total_pairs
    return {
        "pairs": total,
        "measured_pairs": scored,
        "wall_s": total / rate if rate else float("inf"),
        "measured_wall_s": wall,
        "pairs_per_s": rate,
        "extrapolated": True,
    }


def instrumented_rerun(
    cfg: UngappedConfig, index: TwoBankIndex, n_workers: int
) -> dict:
    """One obs-on re-run of a sharded mode, yielding its JSON run report.

    Runs *after* the timed repetitions on a fresh executor, so the wall
    numbers recorded for the mode stay free of tracing and tracemalloc
    overhead; the report embedded per configuration carries the span tree,
    merged shard metrics and the allocation-sanitizer manifest instead of
    timing claims.
    """
    tracer = trace.Tracer(meta={"bench": "step2_scaling", "workers": n_workers})
    registry = obsmetrics.MetricsRegistry()
    allocs = allocsan.AllocsanRecorder(
        meta={"bench": "step2_scaling", "workers": n_workers}
    )
    executor = ShardedStep2Executor(cfg, workers=n_workers, min_pairs_per_shard=0)
    with (
        trace.activate(tracer),
        obsmetrics.activate(registry),
        allocsan.activate(allocs),
    ):
        with trace.span("bench.step2", workers=n_workers):
            executor.run(index)
    report = build_run_report(tracer=tracer, registry=registry)
    report["allocsan"] = allocs.manifest()
    return report


def sweep_backends(
    index: TwoBankIndex,
    cfg: UngappedConfig,
    baseline_hits,
    repeats: int,
) -> dict:
    """Time every registered backend through the batched engine.

    Each backend scores the full workload; its hits must be bit-identical
    to the ``batched``-mode baseline (``identical_to_batched``).  The
    python-loop ``scalar`` backend is timed once regardless of *repeats* —
    it exists as the readable oracle, not a contender.
    """
    matrix: dict = {}
    for info in list_backends():
        engine = BatchedUngappedEngine(replace(cfg, backend=info.name))
        n = 1 if info.name == "scalar" else repeats
        wall, hits = _time(lambda: engine.run(index), n)
        identical = (
            np.array_equal(baseline_hits.offsets0, hits.offsets0)
            and np.array_equal(baseline_hits.offsets1, hits.offsets1)
            and np.array_equal(baseline_hits.scores, hits.scores)
        )
        matrix[info.name] = {
            "description": info.description,
            "score_dtype": info.score_dtype,
            "priority": info.priority,
            "max_batch_pairs": info.max_batch_pairs,
            "pairs": hits.stats.pairs,
            "hits": hits.stats.hits,
            "wall_s": wall,
            "pairs_per_s": hits.stats.pairs / wall if wall > 0 else 0.0,
            "batches": engine.telemetry.batches,
            "oversized_splits": engine.telemetry.oversized_splits,
            "identical_to_batched": bool(identical),
        }
    return matrix


def backends_summary_md(report: dict) -> str:
    """Per-backend matrix as a markdown table (CI job summaries)."""
    lines = [
        "| backend | dtype | priority | pairs/s | wall s | identical |",
        "|---|---|---:|---:|---:|---|",
    ]
    for name, row in report["backends"].items():
        lines.append(
            f"| {name} | {row['score_dtype']} | {row['priority']} "
            f"| {row['pairs_per_s']:,.0f} | {row['wall_s']:.3f} "
            f"| {'yes' if row['identical_to_batched'] else 'NO'} |"
        )
    lines.append(
        f"\nfused speedup vs batched: "
        f"{report['fused_speedup_vs_batched']:.2f}x "
        f"on {report['workload']['pairs']:,} pairs\n"
    )
    return "\n".join(lines)


def run_benchmark(
    quick: bool = False,
    workers: tuple[int, ...] = (2, 4),
    repeats: int = 2,
) -> dict:
    """Run every mode, verify identical hit sets, return the report dict."""
    bank0, bank1, index = build_workload(quick)
    # The historical modes pin backend="batched" so their trajectory stays
    # comparable across PRs; the registry sweep below covers the rest.
    cfg = UngappedConfig(
        w=DEFAULT_SUBSET_SEED.span, n=12, threshold=45, backend="batched"
    )
    import os

    report: dict = {
        "workload": {
            "quick": quick,
            #: Worker scaling is bounded by physical cores; on a 1-CPU box
            #: the sharded modes only demonstrate bit-identical merging.
            "cpu_count": os.cpu_count(),
            "proteins0": len(bank0),
            "proteins1": len(bank1),
            "residues0": bank0.total_residues,
            "residues1": bank1.total_residues,
            "shared_keys": index.n_shared_keys,
            "pairs": index.total_pairs,
            "window": cfg.window,
            "threshold": cfg.threshold,
        },
        "modes": {},
    }
    report["modes"]["scalar"] = measure_scalar(index, cfg)

    wall, per_key_hits = _time(
        lambda: UngappedExtender(cfg).run_per_key(index), repeats
    )
    report["modes"]["per_key"] = {
        "pairs": per_key_hits.stats.pairs,
        "hits": per_key_hits.stats.hits,
        "wall_s": wall,
        "pairs_per_s": per_key_hits.stats.pairs / wall,
    }

    baselines = {"per_key": per_key_hits}
    for label, n_workers in [("batched", 1)] + [
        (f"batched_x{w}", w) for w in workers
    ]:
        # min_pairs_per_shard=0: force the pool so its cost stays measured.
        # In production the executor's default floor routes workloads this
        # small in-process (the fix for the 2-worker regression).
        executor = ShardedStep2Executor(
            cfg, workers=n_workers, min_pairs_per_shard=0
        )
        wall, hits = _time(lambda: executor.run(index), repeats)
        report["modes"][label] = {
            "workers": n_workers,
            "pairs": hits.stats.pairs,
            "hits": hits.stats.hits,
            "wall_s": wall,
            "pairs_per_s": hits.stats.pairs / wall,
            "shards": [
                {
                    "shard": t.shard,
                    "entries": t.entries,
                    "pairs": t.pairs,
                    "hits": t.hits,
                    "wall_s": t.wall_seconds,
                    "retry_wall_s": t.retry_wall_seconds,
                    "batches": t.batches,
                    "max_batch_pairs": t.max_batch_pairs,
                }
                for t in executor.last_timings
            ],
        }
        report["modes"][label]["obs_report"] = instrumented_rerun(
            cfg, index, n_workers
        )
        baselines[label] = hits

    report["backends"] = sweep_backends(
        index, cfg, baselines["batched"], repeats
    )
    report["fused_speedup_vs_batched"] = (
        report["backends"]["batched"]["wall_s"]
        / report["backends"]["fused"]["wall_s"]
    )
    report["min_pairs_per_shard_note"] = (
        "sharded modes force min_pairs_per_shard=0; the executor default "
        f"(262144) routes this {index.total_pairs}-pair workload in-process"
    )

    ref = baselines["per_key"]
    identical = all(
        np.array_equal(ref.offsets0, h.offsets0)
        and np.array_equal(ref.offsets1, h.offsets1)
        and np.array_equal(ref.scores, h.scores)
        for h in baselines.values()
    ) and all(row["identical_to_batched"] for row in report["backends"].values())
    report["identical_hit_sets"] = bool(identical)
    report["speedups_vs_per_key"] = {
        label: report["modes"]["per_key"]["wall_s"] / report["modes"][label]["wall_s"]
        for label in report["modes"]
        if label != "scalar"
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smoke-scale workload")
    parser.add_argument(
        "--workers", type=int, nargs="*", default=[2, 4],
        help="sharded worker counts to measure",
    )
    parser.add_argument("--repeats", type=int, default=2, help="best-of repeats")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="JSON output path"
    )
    parser.add_argument(
        "--summary-md", type=Path, default=None, metavar="FILE",
        help="append the per-backend matrix as a markdown table "
        "(e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(args.quick, tuple(args.workers), args.repeats)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    w = report["workload"]
    print(f"workload: {w['pairs']:,} pairs over {w['shared_keys']:,} shared keys")
    for label, m in report["modes"].items():
        extra = " (extrapolated)" if m.get("extrapolated") else ""
        print(
            f"{label:>12}: {m['wall_s']:10.3f}s  "
            f"{m['pairs_per_s']:>14,.0f} pairs/s{extra}"
        )
    for label, s in report["speedups_vs_per_key"].items():
        print(f"{label:>12}: {s:6.2f}x vs per_key")
    print("backends:")
    for name, row in report["backends"].items():
        flag = "" if row["identical_to_batched"] else "  << NOT IDENTICAL"
        print(
            f"{name:>12}: {row['wall_s']:10.3f}s  "
            f"{row['pairs_per_s']:>14,.0f} pairs/s  "
            f"[{row['score_dtype']}]{flag}"
        )
    print(
        f"fused speedup vs batched: {report['fused_speedup_vs_batched']:.2f}x"
    )
    print(f"identical hit sets: {report['identical_hit_sets']}")
    if args.summary_md is not None:
        with args.summary_md.open("a") as fh:
            fh.write(backends_summary_md(report))
        print(f"appended backend matrix to {args.summary_md}")
    print(f"wrote {args.out}")
    return 0 if report["identical_hit_sets"] else 1


def test_step2_scaling_smoke(tmp_path):
    """Pytest smoke: quick scale, 2 workers, modes must agree."""
    from repro.obs.export import validate_report

    report = run_benchmark(quick=True, workers=(2,), repeats=1)
    assert report["identical_hit_sets"]
    assert report["modes"]["batched"]["hits"] == report["modes"]["per_key"]["hits"]
    for label in ("batched", "batched_x2"):
        embedded = report["modes"][label]["obs_report"]
        assert validate_report(embedded) == []
        assert any(s["name"] == "bench.step2" for s in embedded["spans"])
    # Allocation manifests ride the instrumented re-runs: the in-process
    # mode records the kernel scope itself; the pooled mode records the
    # parent-side merge (kernel scopes live in the worker processes).
    alloc_local = report["modes"]["batched"]["obs_report"]["allocsan"]["scopes"]
    assert "kernel.batched.score" in alloc_local
    assert "step2.engine.run_stream" in alloc_local
    alloc_pool = report["modes"]["batched_x2"]["obs_report"]["allocsan"]["scopes"]
    assert "step2.merge" in alloc_pool
    for name in ("fused", "int16", "batched", "per_key", "scalar"):
        assert report["backends"][name]["identical_to_batched"], name
        assert report["backends"][name]["hits"] == report["modes"]["batched"]["hits"]
    assert report["fused_speedup_vs_batched"] > 0
    assert "| backend |" in backends_summary_md(report)
    out = tmp_path / "BENCH_step2.json"
    out.write_text(json.dumps(report))
    assert json.loads(out.read_text())["workload"]["pairs"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
