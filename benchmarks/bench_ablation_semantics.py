"""Ablation A — window-score semantics: Kadane vs the paper's literal
pseudocode.

The paper prints ``score = max(score, score + Sub[..])``, which reduces to
summing the positive substitution costs in the window (order-blind); the
conventional recurrence is ``score = max(0, score + Sub[..])``.  DESIGN.md
treats the printed form as a typo; this ablation quantifies the difference
on a live workload: the literal form passes far more background pairs at
any threshold (worse selectivity for equal hardware cost) while true-hit
scores barely move — evidence for the typo reading.
"""

from __future__ import annotations

import numpy as np

from harness import get_model, write_table
from repro.extend.ungapped import (
    ScoreSemantics,
    UngappedConfig,
    UngappedExtender,
)
from repro.index.kmer import TwoBankIndex
from repro.index.subset_seed import DEFAULT_SUBSET_SEED
from repro.seqs.generate import random_genome, random_protein_bank
from repro.seqs.translate import translated_bank
from repro.util.reporting import TextTable


def run_ablation():
    """Hit counts under both semantics on one background workload."""
    rng = np.random.default_rng(5)
    bank = random_protein_bank(rng, 150, mean_length=344)
    frames = translated_bank(random_genome(rng, 120_000))
    index = TwoBankIndex.build(bank, frames, DEFAULT_SUBSET_SEED)
    out = {}
    for sem in ScoreSemantics:
        hits = UngappedExtender(
            UngappedConfig(w=4, n=12, threshold=45, semantics=sem)
        ).run(index)
        out[sem] = hits
    return index, out


def build_table() -> TextTable:
    """Render the semantics ablation."""
    index, out = run_ablation()
    t = TextTable(
        "Ablation A — window-score semantics (background workload)",
        ["semantics", "hits ≥ 45", "hit rate", "false-trigger ratio vs Kadane"],
    )
    base = len(out[ScoreSemantics.KADANE])
    for sem in ScoreSemantics:
        hits = out[sem]
        t.add_row(
            sem.value,
            len(hits),
            f"{len(hits) / index.total_pairs:.2e}",
            f"{len(hits) / max(1, base):.1f}×",
        )
    t.add_note(
        "background pairs only: every extra literal-semantics hit is a "
        "false trigger handed to the expensive gapped stage"
    )
    return t


def test_ablation_semantics(benchmark):
    """Quantify the semantics gap; literal must be markedly less selective."""
    index, out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    kadane = len(out[ScoreSemantics.KADANE])
    literal = len(out[ScoreSemantics.PAPER_LITERAL])
    # Literal scores dominate Kadane scores, so hits are a superset…
    assert literal >= kadane
    # …and on pure background the inflation is large (selectivity loss).
    assert literal > 5 * max(1, kadane)
    table = build_table()
    print()
    print(table.render())
    write_table("ablation_semantics", table.render())


if __name__ == "__main__":
    print(build_table().render())
