"""Table 6 — sensitivity/selectivity: ROC50 and AP-mean.

Paper values (102 queries vs the yeast genome, curated families):

===========  ======  ========
             ROC50   AP-mean
===========  ======  ========
FPGA-RASC    0.468   0.447
NCBI-BLAST   0.479   0.441
===========  ======  ========

We rebuild the protocol on the planted-family benchmark (17 families,
synthetic yeast-scale genome, mutation channels spanning the twilight
zone) and score **both real engines functionally**: the seed pipeline
(single weight-3.5 subset seed, the RASC algorithm) and the BLAST-like
baseline (two-hit 3-mers).  The claim under test is *similarity*: one
seed of span 4 with subset groups loses little sensitivity against
BLAST's two-hit heuristic.  Absolute values depend on the (synthetic)
family hardness; the bench asserts closeness between engines, not the
paper's absolute 0.468.
"""

from __future__ import annotations

from harness import PAPER_TABLE6, current_scale, get_model, write_table
from repro.baseline.tblastn import TblastnSearch
from repro.core.pipeline import SeedComparisonPipeline
from repro.eval.benchmark_data import build_benchmark
from repro.util.reporting import TextTable

_CACHE = {}


def run_sensitivity(scale=None):
    """Build the benchmark and score both engines (cached per scale).

    Half the families are *remote* (pairwise identity below the detection
    limit), matching the composition of real curated benchmarks — the
    reason NCBI BLAST itself only reaches ~0.48 ROC50 on Gertz et al.
    """
    scale = scale or current_scale()
    if scale.name in _CACHE:
        return _CACHE[scale.name]
    bench = build_benchmark(
        seed=2009,
        n_families=17,
        queries_per_family=scale.sens_queries_per_family,
        plants_per_family=4,
        genome_length=scale.sens_genome_nt,
        query_identity=(0.55, 0.88),
        plant_identity=(0.55, 0.90),
        remote_fraction=0.5,
    )
    model = get_model(scale.name)
    rasc = bench.score_engine(
        "FPGA-RASC",
        lambda q, g: SeedComparisonPipeline(model.config).compare_with_genome(q, g),
    )
    blast = bench.score_engine(
        "NCBI-BLAST", lambda q, g: TblastnSearch().search_genome(q, g)
    )
    _CACHE[scale.name] = (bench, rasc, blast)
    return _CACHE[scale.name]


def build_table(rasc, blast) -> TextTable:
    """Render Table 6 with paper values inline."""
    t = TextTable(
        "Table 6 — ROC50 and AP-mean (planted-family benchmark)",
        ["engine", "ROC50 (paper)", "AP-mean (paper)"],
    )
    for run, paper_key in ((rasc, "FPGA-RASC"), (blast, "NCBI-BLAST")):
        p_roc, p_ap = PAPER_TABLE6[paper_key]
        t.add_row(run.name, f"{run.roc50:.3f} ({p_roc})", f"{run.ap_mean:.3f} ({p_ap})")
    t.add_note(
        "ground truth is planted (synthetic families), so absolute values "
        "are benchmark-specific; the paper's claim is engine *similarity*"
    )
    return t


def test_table6_sensitivity(paper_model, benchmark):
    """Run both engines on the benchmark; check the similarity claim."""
    bench, rasc, blast = run_sensitivity()
    benchmark.pedantic(
        lambda: rasc.roc50, rounds=1, iterations=1
    )  # scoring itself is the measured unit elsewhere; keep bench cheap
    table = build_table(rasc, blast)
    print()
    print(table.render())
    write_table("table6_sensitivity", table.render())
    # Both engines detect a substantial fraction of twilight homologs…
    assert rasc.roc50 > 0.25
    assert blast.roc50 > 0.25
    # …and are similar, as the paper claims (|ΔROC50| small).
    assert abs(rasc.roc50 - blast.roc50) < 0.15
    assert abs(rasc.ap_mean - blast.ap_mean) < 0.15


if __name__ == "__main__":
    bench, rasc, blast = run_sensitivity()
    print(build_table(rasc, blast).render())
