"""Table 5 — throughput comparison in Kaa·Mnt/s.

Paper values: DeCypher 182, CLC 2, FLASH/FPGA 451, Systolic 863 (peak),
½ RASC-100 620.  We compute the same normalised metric for our modelled
single-FPGA (½ blade) runs and print the literature values alongside.
The paper computes the metric on the 30K workload: 10 335 Kaa × 220 Mnt
over the overall RASC time.
"""

from __future__ import annotations

from harness import BANK_LABELS, get_model, write_table
from repro.eval.metrics import LITERATURE_THROUGHPUT, kaamnt_per_second
from repro.seqs.generate import PAPER_BANKS, PAPER_GENOME_NT
from repro.util.reporting import TextTable


def rasc_throughput(model, label: str, n_pes: int = 192) -> float:
    """Kaa·Mnt/s of the modelled single-FPGA end-to-end run."""
    seconds = model.rasc_total_seconds(label, n_pes)
    return kaamnt_per_second(PAPER_BANKS[label][1], PAPER_GENOME_NT, seconds)


def build_table(model) -> TextTable:
    """Render Table 5 with the literature rows."""
    t = TextTable(
        "Table 5 — throughput (Kaa·Mnt/s)",
        ["implementation", "KaaMnt/s", "note"],
    )
    for point in LITERATURE_THROUGHPUT:
        t.add_row(point.name, f"{point.kaamnt_per_s:.0f}", point.note)
    for label in BANK_LABELS:
        t.add_row(
            f"this model, ½ RASC, {label} bank",
            f"{rasc_throughput(model, label):.0f}",
            "modelled end-to-end (steps 1+2+3)",
        )
    t.add_note("paper's own 620 figure corresponds to the large-bank regime")
    return t


def test_table5_throughput(paper_model, benchmark):
    """Benchmark the metric computation; emit the table; check ordering."""
    benchmark(rasc_throughput, paper_model, "30K")
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("table5_throughput", table.render())
    ours = rasc_throughput(paper_model, "30K")
    # Land in the paper's regime: well above DeCypher/CLC, near the
    # paper's 620, below the systolic gapless peak.
    assert 400 < ours < 900, ours
    assert ours > 182  # DeCypher
    assert ours < 863 * 1.1  # systolic peak (no gapped stage)
    # Throughput grows with bank size (occupancy effect).
    series = [rasc_throughput(paper_model, l) for l in BANK_LABELS]
    assert series == sorted(series), series


if __name__ == "__main__":
    print(build_table(get_model()).render())
