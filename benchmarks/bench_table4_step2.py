"""Table 4 — step 2 only: sequential vs RASC 64/128/192 PEs.

Paper numbers (seconds / speedup over the sequential step 2):

=====  ==========  ============  ============  ============
bank   sequential  RASC 64       RASC 128      RASC 192
=====  ==========  ============  ============  ============
1K     2 368       220 / 10.76   176 / 13.45   169 / 14.01
3K     7 577       462 / 16.40   280 / 27.06   223 / 33.97
10K    24 687      1366 / 18.07  720 / 34.28   510 / 48.38
30K    73 492      3932 / 18.68  2015 / 36.47  1373 / 53.52
=====  ==========  ============  ============  ============

The key shape: parallelisation efficiency *grows with the data set* —
larger banks mean longer IL0 index lists, hence fuller PE batches.
"""

from __future__ import annotations

from harness import (
    BANK_LABELS,
    PAPER_STEP2_RASC,
    PAPER_STEP2_SEQ,
    PE_COUNTS,
    get_model,
    write_table,
)
from repro.util.reporting import TextTable


def build_table(model) -> TextTable:
    """Render Table 4 with paper values inline."""
    t = TextTable(
        "Table 4 — step 2 only (seconds, speedup vs sequential)",
        ["bank", "sequential (paper)"]
        + [f"RASC {p} (paper)" for p in PE_COUNTS]
        + ["utilization 64/128/192"],
    )
    for label in BANK_LABELS:
        seq = model.software_steps(label).step2
        cells = []
        utils = []
        for p in PE_COUNTS:
            s = model.accel_step2_seconds(label, p)
            cells.append(
                f"{s:,.0f} / {seq / s:.2f} "
                f"({PAPER_STEP2_RASC[p][label]:,} / "
                f"{PAPER_STEP2_SEQ[label] / PAPER_STEP2_RASC[p][label]:.2f})"
            )
            utils.append(
                f"{model.bank_stats(label).schedule(model.psc_config(p)).utilization:.0%}"
            )
        t.add_row(
            label, f"{seq:,.0f} ({PAPER_STEP2_SEQ[label]:,})", *cells,
            "/".join(utils),
        )
    t.add_note(
        "utilization = busy PE-cycles / offered PE-cycles of the ideal "
        "schedule — the paper's small-bank starvation mechanism"
    )
    return t


def test_table4_step2(paper_model, benchmark):
    """Benchmark one schedule evaluation; emit the table; check shape."""
    stats = paper_model.bank_stats("30K")
    benchmark(stats.schedule, paper_model.psc_config(192))
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("table4_step2", table.render())
    speedups = {}
    for label in BANK_LABELS:
        seq = paper_model.software_steps(label).step2
        for p in PE_COUNTS:
            speedups[(label, p)] = seq / paper_model.accel_step2_seconds(label, p)
    # Efficiency grows with bank size at every PE count (paper's trend).
    for p in PE_COUNTS:
        col = [speedups[(label, p)] for label in BANK_LABELS]
        assert col == sorted(col), col
    # 30K/192 is the calibration anchor: must land on the paper's 53.5×.
    paper_anchor = PAPER_STEP2_SEQ["30K"] / PAPER_STEP2_RASC[192]["30K"]
    assert abs(speedups[("30K", 192)] - paper_anchor) < 3.0
    # Occupancy: 1K utilisation is far below 30K at 192 PEs.
    u1 = paper_model.bank_stats("1K").schedule(paper_model.psc_config(192)).utilization
    u30 = paper_model.bank_stats("30K").schedule(paper_model.psc_config(192)).utilization
    assert u1 < 0.5 * u30


if __name__ == "__main__":
    print(build_table(get_model()).render())
