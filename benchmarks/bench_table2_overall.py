"""Table 2 — overall performance: NCBI tblastn vs RASC 64/128/192 PEs.

Paper numbers (seconds / speedup over tblastn):

=====  ========  ==========  ===========  ===========
bank   tblastn   RASC 64     RASC 128     RASC 192
=====  ========  ==========  ===========  ===========
1K     2 379     506 / 4.70  451 / 5.27   443 / 5.37
3K     7 089     873 / 8.10  689 / 10.20  631 / 11.23
10K    24 017    2220/10.81  1661 / 14.45 1450 / 16.56
30K    70 891    6031/11.75  4312 / 16.44 3667 / 19.33
=====  ========  ==========  ===========  ===========

Our rows are modelled at paper scale from measured index statistics and
functional rates; only the 30K anchors are calibrated (see harness).  The
headline *shape* claims reproduced: speedup grows with bank size (PE-array
occupancy), more PEs help more on larger banks, and the 192-PE/30K speedup
lands near 19×.
"""

from __future__ import annotations

from harness import (
    BANK_LABELS,
    PAPER_RASC_TOTAL,
    PAPER_TBLASTN,
    PE_COUNTS,
    get_model,
    write_table,
)
from repro.util.reporting import TextTable


def build_table(model) -> TextTable:
    """Render Table 2 with paper values inline."""
    t = TextTable(
        "Table 2 — overall: NCBI tblastn vs RASC (seconds, speedup)",
        ["bank", "tblastn (paper)", "RASC 64 (paper)", "RASC 128 (paper)",
         "RASC 192 (paper)", "speedup 64/128/192 (paper)"],
    )
    for label in BANK_LABELS:
        tb = model.tblastn_seconds(label)
        totals = {p: model.rasc_total_seconds(label, p) for p in PE_COUNTS}
        speed = "/".join(f"{tb / totals[p]:.2f}" for p in PE_COUNTS)
        paper_speed = "/".join(
            f"{PAPER_TBLASTN[label] / PAPER_RASC_TOTAL[p][label]:.2f}"
            for p in PE_COUNTS
        )
        t.add_row(
            label,
            f"{tb:,.0f} ({PAPER_TBLASTN[label]:,})",
            f"{totals[64]:,.0f} ({PAPER_RASC_TOTAL[64][label]:,})",
            f"{totals[128]:,.0f} ({PAPER_RASC_TOTAL[128][label]:,})",
            f"{totals[192]:,.0f} ({PAPER_RASC_TOTAL[192][label]:,})",
            f"{speed} ({paper_speed})",
        )
    t.add_note("calibrated anchors: tblastn@30K, step-2 seq@30K, RASC step-2@30K/192")
    return t


def test_table2_overall(paper_model, benchmark):
    """Benchmark one end-to-end projection; emit the table; check shape."""
    benchmark(paper_model.rasc_total_seconds, "10K", 192)
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("table2_overall", table.render())
    # Shape assertions — who wins, by roughly what factor, and the trend.
    speedups = {}
    for label in BANK_LABELS:
        tb = paper_model.tblastn_seconds(label)
        for p in PE_COUNTS:
            speedups[(label, p)] = tb / paper_model.rasc_total_seconds(label, p)
    # RASC always wins.
    assert all(s > 1 for s in speedups.values())
    # Speedup grows monotonically with bank size at every PE count.
    for p in PE_COUNTS:
        col = [speedups[(label, p)] for label in BANK_LABELS]
        assert col == sorted(col), col
    # More PEs never hurt at any bank size.
    for label in BANK_LABELS:
        row = [speedups[(label, p)] for p in PE_COUNTS]
        assert row == sorted(row), row
    # Headline factors: ~5× at 1K/192, ~19× at 30K/192 (±25 %).
    assert 4.0 < speedups[("1K", 192)] < 6.7
    assert 14.5 < speedups[("30K", 192)] < 24.0


if __name__ == "__main__":
    print(build_table(get_model()).render())
