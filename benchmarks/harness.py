"""Shared benchmark harness: paper workloads, projections, calibration.

Every table bench uses one :class:`PaperModel` (cached per process).  The
model combines three measurement passes with the paper's published anchors:

1. **Statistics pass** — the four protein banks are generated at *full
   cardinality* (1 000–30 000 proteins, nr-like composition/lengths) and
   indexed; the genome side is generated at ``genome_nt`` (default
   2.2 Mnt = 1/100 of chromosome 1) and indexed.  Joining gives exact
   paper-scale ``K0`` distributions per index entry and scaled ``K1``
   distributions, which are projected to paper scale by the linear factor
   ``f1 = 220 Mnt / genome_nt`` (the PE-array schedule is *linear* in K1,
   so this projection is exact in expectation; the non-linear ``ceil(K0/P)``
   occupancy term uses the exact full-cardinality K0).
2. **Functional pass** — a reduced workload is actually *run* through the
   pipeline and the baseline to measure scale-invariant rates: step-2 hit
   rate per pair, gapped extensions per hit, DP cells per gapped
   extension, baseline word-hit rate per aa², triggers per word hit.
3. **Calibration** — the four per-operation host constants are anchored,
   once, on the paper's 30K-bank numbers (step-2 sequential 73 492 s;
   step-1 ≈ 220 s and step-3 ≈ 2 090 s from Table 7 × Table 2; tblastn
   70 891 s).  Every other number in every table is then a *prediction*
   from measured statistics.

Scale is controlled by ``REPRO_BENCH_SCALE`` (``quick`` default, ``full``
for a 22 Mnt genome side and a larger functional/sensitivity pass).
Bench output tables are also written to ``benchmarks/out/``.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.baseline.tblastn import TblastnConfig, TblastnSearch
from repro.core.config import PipelineConfig
from repro.core.pipeline import SeedComparisonPipeline
from repro.index.kmer import BankIndex, TwoBankIndex
from repro.psc.schedule import PscArrayConfig, schedule_cycles
from repro.rasc.host import HostCostModel
from repro.rasc.platform import RESULT_RECORD_BYTES, Rasc100
from repro.seqs.generate import (
    PAPER_BANKS,
    PAPER_GENOME_NT,
    random_genome,
    random_protein_bank,
)
from repro.seqs.translate import translated_bank

OUT_DIR = Path(__file__).parent / "out"

# ---------------------------------------------------------------------------
# Paper-published numbers (the targets every bench prints next to ours).
# ---------------------------------------------------------------------------
BANK_LABELS = ("1K", "3K", "10K", "30K")
PE_COUNTS = (64, 128, 192)

#: Table 2 — overall seconds.
PAPER_TBLASTN = {"1K": 2_379, "3K": 7_089, "10K": 24_017, "30K": 70_891}
PAPER_RASC_TOTAL = {
    64: {"1K": 506, "3K": 873, "10K": 2_220, "30K": 6_031},
    128: {"1K": 451, "3K": 689, "10K": 1_661, "30K": 4_312},
    192: {"1K": 443, "3K": 631, "10K": 1_450, "30K": 3_667},
}
#: Table 4 — step-2-only seconds.
PAPER_STEP2_SEQ = {"1K": 2_368, "3K": 7_577, "10K": 24_687, "30K": 73_492}
PAPER_STEP2_RASC = {
    64: {"1K": 220, "3K": 462, "10K": 1_366, "30K": 3_932},
    128: {"1K": 176, "3K": 280, "10K": 720, "30K": 2_015},
    192: {"1K": 169, "3K": 223, "10K": 510, "30K": 1_373},
}
#: Table 3 — step-2 seconds at raised threshold, 192 PEs.
PAPER_TABLE3 = {
    "1fpga": {"1K": 168, "3K": 223, "10K": 510, "30K": 1_373},
    "2fpga": {"1K": 148, "3K": 175, "10K": 330, "30K": 759},
}
#: Table 1 — software per-step percentages (30K workload).
PAPER_TABLE1 = (0.3, 97.0, 2.7)
#: Table 7 — RASC-192 per-step percentages.
PAPER_TABLE7 = {
    "1K": (43, 38, 19),
    "3K": (31, 35, 34),
    "10K": (14, 35, 51),
    "30K": (6, 37, 57),
}
#: Table 6 — sensitivity/selectivity.
PAPER_TABLE6 = {"FPGA-RASC": (0.468, 0.447), "NCBI-BLAST": (0.479, 0.441)}

#: Derived 30K anchors for host calibration: Table 2 RASC-192 total is
#: 3 667 s split 6 % / 37 % / 57 % by Table 7.
ANCHOR_STEP1_S = 0.06 * 3_667  # ≈ 220 s
ANCHOR_STEP3_S = 0.57 * 3_667  # ≈ 2 090 s
ANCHOR_STEP2_SEQ_S = PAPER_STEP2_SEQ["30K"]
ANCHOR_TBLASTN_S = PAPER_TBLASTN["30K"]


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes for one fidelity level."""

    name: str
    genome_nt: int  # statistics-pass genome length
    func_proteins: int  # functional-pass bank cardinality
    func_genome_nt: int  # functional-pass genome length
    sens_queries_per_family: int  # Table 6 queries per family (×17 families)
    sens_genome_nt: int  # Table 6 genome length


SCALES = {
    "quick": BenchScale("quick", 2_200_000, 300, 200_000, 3, 300_000),
    "full": BenchScale("full", 22_000_000, 1_000, 600_000, 6, 1_200_000),
}


def current_scale() -> BenchScale:
    """Scale selected by ``REPRO_BENCH_SCALE`` (default quick)."""
    return SCALES[os.environ.get("REPRO_BENCH_SCALE", "quick")]


# ---------------------------------------------------------------------------
# Measurement passes
# ---------------------------------------------------------------------------
@dataclass
class BankStats:
    """Paper-scale projections for one bank label."""

    label: str
    n_proteins: int
    bank_residues: int  # measured = paper scale (full cardinality)
    k0s: np.ndarray  # exact per-entry K0 (bank side)
    k1s: np.ndarray  # projected per-entry K1 (genome side, ×f1)
    pairs: int  # projected step-2 pairs at paper scale

    def schedule(self, config: PscArrayConfig):
        """PE-array schedule of this bank's projected workload."""
        return schedule_cycles(self.k0s, self.k1s, config)


@dataclass
class FunctionalRates:
    """Scale-invariant rates measured from real runs."""

    hit_rate: float  # step-2 hits per pair at the default threshold
    hit_rate_raised: float  # … at the Table-3 raised threshold
    gapped_per_hit: float  # gapped extensions per step-2 hit (dedup)
    cells_per_gapped: float  # DP cells per gapped extension
    word_hit_rate: float  # baseline word hits per (aa0 × aa1)
    bl_ungapped_cells_per_hit: float  # baseline ungapped cells per word hit
    bl_gapped_cells_per_aa2: float  # baseline gapped cells per (aa0 × aa1)


class PaperModel:
    """All measurements + projections for the performance tables."""

    GENOME_SEED = 20090501

    def __init__(self, scale: BenchScale | None = None) -> None:
        self.scale = scale or current_scale()
        self.config = PipelineConfig()
        self.raised_threshold = self.config.ungapped_threshold + 10
        self._genome_index: BankIndex | None = None
        self._bank_stats: dict[str, BankStats] = {}
        self._rates: FunctionalRates | None = None
        self._hosts: dict[str, float] | None = None
        self._pair_overhead: float | None = None
        self.platform = Rasc100()

    # -- statistics pass ---------------------------------------------------
    @property
    def genome_index(self) -> BankIndex:
        """Index of the scaled genome's 6-frame translation (cached)."""
        if self._genome_index is None:
            rng = np.random.default_rng(self.GENOME_SEED)
            genome = random_genome(rng, self.scale.genome_nt, name="chr1like")
            frames = translated_bank(genome, pad=64)
            self._genome_index = BankIndex(frames, self.config.seed_model)
            self._genome_residues = frames.total_residues
        return self._genome_index

    @property
    def f1(self) -> float:
        """Genome-side linear projection factor to paper scale."""
        return PAPER_GENOME_NT / self.scale.genome_nt

    @property
    def genome_residues_paper(self) -> int:
        """Amino acids on the translated genome side at paper scale."""
        self.genome_index
        return int(self._genome_residues * self.f1)

    def bank_stats(self, label: str) -> BankStats:
        """Statistics pass for one bank label (cached)."""
        if label not in self._bank_stats:
            n, total = PAPER_BANKS[label]
            rng = np.random.default_rng(hash(label) % 2**31)
            bank = random_protein_bank(
                rng, n, mean_length=total / n, name_prefix=f"nr{label}_"
            )
            bidx = BankIndex(bank, self.config.seed_model)
            joint = TwoBankIndex(bidx, self.genome_index)
            k0s, k1s_scaled = joint.list_length_pairs()
            k1s = np.maximum(1, np.round(k1s_scaled * self.f1)).astype(np.int64)
            self._bank_stats[label] = BankStats(
                label=label,
                n_proteins=n,
                bank_residues=bank.total_residues,
                k0s=k0s.copy(),
                k1s=k1s,
                pairs=int((k0s * k1s).sum()),
            )
        return self._bank_stats[label]

    def split_bank_stats(self, label: str, rng_seed: int = 7) -> list[BankStats]:
        """Binomially split one bank's K0 lists across two FPGAs.

        Splitting the protein bank halves each entry's K0 (binomial
        thinning); entries emptied in a half disappear from that half's
        workload.  This is the statistical image of
        :func:`repro.core.partition.split_bank` at index level.
        """
        base = self.bank_stats(label)
        rng = np.random.default_rng(rng_seed)
        k0_a = rng.binomial(base.k0s, 0.5).astype(np.int64)
        k0_b = base.k0s - k0_a
        halves = []
        for tag, k0 in (("a", k0_a), ("b", k0_b)):
            keep = k0 > 0
            halves.append(
                BankStats(
                    label=f"{label}/{tag}",
                    n_proteins=base.n_proteins // 2,
                    bank_residues=base.bank_residues // 2,
                    k0s=k0[keep],
                    k1s=base.k1s[keep],
                    pairs=int((k0[keep] * base.k1s[keep]).sum()),
                )
            )
        return halves

    # -- functional pass ----------------------------------------------------
    @property
    def rates(self) -> FunctionalRates:
        """Scale-invariant rates from real reduced-scale runs (cached)."""
        if self._rates is None:
            s = self.scale
            rng = np.random.default_rng(77)
            bank = random_protein_bank(rng, s.func_proteins, mean_length=344)
            genome = random_genome(rng, s.func_genome_nt)
            pipe = SeedComparisonPipeline(self.config)
            report = pipe.compare_with_genome(bank, genome)
            pairs = pipe.last_hits.stats.pairs
            hits = len(pipe.last_hits)
            gapped = report.n_gapped_extensions
            cells3 = pipe.profile.step3.operations
            raised = int(
                (pipe.last_hits.scores >= self.raised_threshold).sum()
            )
            if raised == 0 and hits:
                # Too few samples at the raised threshold: fall back on the
                # Karlin tail, P(S >= t+d) ~ P(S >= t)·exp(-lambda_u·d).
                from repro.extend.stats import karlin_lambda

                lam = karlin_lambda(self.config.matrix)
                raised = hits * float(
                    np.exp(-lam * (self.raised_threshold
                                   - self.config.ungapped_threshold))
                )
            # Baseline functional pass (smaller: the scan is the slow part).
            bl_bank = random_protein_bank(rng, max(20, s.func_proteins // 6),
                                          mean_length=344)
            bl_genome = random_genome(rng, max(60_000, s.func_genome_nt // 3))
            bl = TblastnSearch(TblastnConfig())
            bl.search_genome(bl_bank, bl_genome)
            # 6 reading frames of L nt yield ≈ 2L amino acids.
            aa2 = bl_bank.total_residues * (len(bl_genome) * 2)
            self._rates = FunctionalRates(
                hit_rate=hits / max(1, pairs),
                hit_rate_raised=raised / max(1, pairs),
                gapped_per_hit=gapped / max(1, hits),
                cells_per_gapped=cells3 / max(1, gapped),
                word_hit_rate=bl.stats.word_hits / aa2,
                bl_ungapped_cells_per_hit=bl.stats.ungapped_cells
                / max(1, bl.stats.word_hits),
                bl_gapped_cells_per_aa2=bl.stats.gapped_cells / aa2,
            )
        return self._rates

    # -- projections ---------------------------------------------------------
    def step2_cells(self, label: str) -> int:
        """Projected step-2 window cells at paper scale."""
        return self.bank_stats(label).pairs * self.config.window

    def step2_hits(self, label: str, raised: bool = False) -> int:
        """Projected step-2 hits at paper scale."""
        rate = self.rates.hit_rate_raised if raised else self.rates.hit_rate
        return int(self.bank_stats(label).pairs * rate)

    def step3_cells(self, label: str) -> int:
        """Projected step-3 DP cells at paper scale."""
        return int(
            self.step2_hits(label)
            * self.rates.gapped_per_hit
            * self.rates.cells_per_gapped
        )

    def step1_residues(self, label: str) -> int:
        """Residues indexed in step 1 at paper scale."""
        return self.bank_stats(label).bank_residues + self.genome_residues_paper

    # -- calibration ----------------------------------------------------------
    @property
    def host(self) -> HostCostModel:
        """Host model calibrated on the 30K anchors (cached)."""
        if self._hosts is None:
            model = HostCostModel.calibrated(
                step1_anchor=(self.step1_residues("30K"), ANCHOR_STEP1_S),
                step2_anchor=(self.step2_cells("30K"), ANCHOR_STEP2_SEQ_S),
                step3_anchor=(self.step3_cells("30K"), ANCHOR_STEP3_S),
            )
            self._hosts = {"model": model}
        return self._hosts["model"]

    @property
    def baseline_ns_per_word_hit(self) -> float:
        """Baseline scan cost calibrated on the 30K tblastn anchor."""
        wh = self.baseline_word_hits("30K")
        fixed = (
            self.host.step2_seconds(
                int(wh * self.rates.bl_ungapped_cells_per_hit)
            )
            + self.host.step3_seconds(self.baseline_gapped_cells("30K"))
        )
        return max(0.1, (ANCHOR_TBLASTN_S - fixed) / wh * 1e9)

    def baseline_word_hits(self, label: str) -> int:
        """Projected baseline word hits at paper scale."""
        aa0 = PAPER_BANKS[label][1]
        aa1 = self.genome_residues_paper
        return int(self.rates.word_hit_rate * aa0 * aa1)

    def baseline_gapped_cells(self, label: str) -> int:
        """Projected baseline gapped DP cells at paper scale."""
        aa0 = PAPER_BANKS[label][1]
        aa1 = self.genome_residues_paper
        return int(self.rates.bl_gapped_cells_per_aa2 * aa0 * aa1)

    # -- modelled times --------------------------------------------------------
    def tblastn_seconds(self, label: str) -> float:
        """Modelled NCBI-tblastn run time at paper scale."""
        wh = self.baseline_word_hits(label)
        return (
            wh * self.baseline_ns_per_word_hit * 1e-9
            + self.host.step2_seconds(
                int(wh * self.rates.bl_ungapped_cells_per_hit)
            )
            + self.host.step3_seconds(self.baseline_gapped_cells(label))
        )

    def software_steps(self, label: str):
        """Modelled sequential software step times (our algorithm)."""
        return self.host.steps(
            step1_residues=self.step1_residues(label),
            step2_cells=self.step2_cells(label),
            step3_cells=self.step3_cells(label),
            nucleotides=PAPER_GENOME_NT,
        )

    def psc_config(self, n_pes: int, raised: bool = False) -> PscArrayConfig:
        """PSC configuration for one PE count."""
        return PscArrayConfig(
            n_pes=n_pes,
            window=self.config.window,
            threshold=(
                self.raised_threshold if raised else self.config.ungapped_threshold
            ),
            matrix=self.config.matrix,
        )

    @property
    def pair_overhead(self) -> float:
        """Per-work micro-overhead κ calibrated on the 30K/192-PE anchor.

        See :meth:`repro.rasc.platform.Rasc100.modeled_step2_seconds` for
        the mechanism; this solves the single κ that makes the model's
        30K/192 step-2 time equal the paper's 1 373 s, then predicts the
        remaining 11 cells of Table 4 (and Tables 2, 3 and 7).
        """
        if self._pair_overhead is None:
            st = self.bank_stats("30K")
            cfg = self.psc_config(192)
            bd = st.schedule(cfg)
            target_cycles = PAPER_STEP2_RASC[192]["30K"] * cfg.clock_hz
            kappa = (target_cycles - bd.total_cycles) * cfg.n_pes / bd.busy_pe_cycles
            self._pair_overhead = max(0.0, float(kappa))
        return self._pair_overhead

    def accel_step2_seconds(
        self, label: str, n_pes: int, raised: bool = False, n_concurrent: int = 1,
        stats: BankStats | None = None,
    ) -> float:
        """Modelled accelerated step-2 wall seconds at paper scale."""
        st = stats or self.bank_stats(label)
        hits = int(st.pairs * (
            self.rates.hit_rate_raised if raised else self.rates.hit_rate
        ))
        seconds, _ = self.platform.modeled_step2_seconds(
            st.k0s, st.k1s, hits, self.psc_config(n_pes, raised), n_concurrent,
            pair_overhead_cycles=self.pair_overhead,
        )
        return seconds

    def rasc_total_seconds(self, label: str, n_pes: int) -> float:
        """Modelled end-to-end accelerated time (Table 2 accounting)."""
        sw = self.software_steps(label)
        return sw.step1 + self.accel_step2_seconds(label, n_pes) + sw.step3


@functools.lru_cache(maxsize=2)
def get_model(scale_name: str | None = None) -> PaperModel:
    """Process-wide cached model."""
    scale = SCALES[scale_name] if scale_name else current_scale()
    return PaperModel(scale)


def write_table(name: str, rendered: str) -> Path:
    """Persist a rendered table under ``benchmarks/out/``."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    path.write_text(f"# generated {stamp}, scale={current_scale().name}\n{rendered}\n")
    return path
