"""Figure 3 — RASC-100 platform integration, exercised as a dataflow report.

Figure 3 shows how the PSC operator sits behind SGI's core services: DMA
engines over NUMAlink, ADR registers, board SRAM, the loader.  This bench
exercises that integration path end to end on the platform model — load a
bitstream, program the ADRs, run a workload, collect results — and
reports the transfer/compute budget (with the input stream overlapped
against compute, as the double-buffered design achieves), plus the
paper-scale I/O budget of the 30K workload.
"""

from __future__ import annotations

import numpy as np

from harness import get_model, write_table
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.psc.schedule import PscArrayConfig
from repro.psc.workload import job_stream_bytes
from repro.rasc.platform import RESULT_RECORD_BYTES, Rasc100
from repro.seqs.generate import random_protein_bank
from repro.util.reporting import TextTable, fmt_seconds


def run_dataflow():
    """Drive the full platform path on a live workload."""
    rng = np.random.default_rng(3)
    b0 = random_protein_bank(rng, 25, mean_length=150, name_prefix="q")
    b1 = random_protein_bank(rng, 40, mean_length=150, name_prefix="s")
    index = TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))
    cfg = PscArrayConfig(n_pes=32, slot_size=8, window=3 + 2 * 8, threshold=20)
    rasc = Rasc100()
    rasc.load_bitstream(cfg, fpga_id=0)
    run = rasc.run_step2(index, flank=8, fpga_id=0)
    return rasc, run, cfg, index


def build_table(model) -> TextTable:
    """Render the dataflow budget report."""
    rasc, run, cfg, index = run_dataflow()
    adr = rasc.fpgas[0].adr
    t = TextTable(
        "Figure 3 — RASC-100 dataflow budget",
        ["quantity", "live small run", "projected 30K workload"],
    )
    st = model.bank_stats("30K")
    cfg30 = model.psc_config(192)
    in30 = int((st.k0s.sum() + st.k1s.sum()) * (cfg30.window + 4))
    hits30 = model.step2_hits("30K")
    out30 = hits30 * RESULT_RECORD_BYTES
    compute30 = model.accel_step2_seconds("30K", 192)
    bw = rasc.fabric.link.bandwidth_bytes_per_s
    t.add_row("bitstream loads", rasc.loads, 1)
    t.add_row("ADR writes (host)", adr.writes, "same protocol")
    t.add_row("input stream (bytes)", f"{run.plan.bytes_in:,}", f"{in30:,}")
    t.add_row("result stream (bytes)", f"{run.plan.bytes_out:,}", f"{out30:,}")
    t.add_row(
        "compute time",
        fmt_seconds(run.compute_seconds),
        fmt_seconds(compute30),
    )
    t.add_row(
        "input-stream time (un-overlapped)",
        fmt_seconds(run.plan.bytes_in / bw),
        fmt_seconds(in30 / bw),
    )
    t.add_row(
        "I/O exposed beyond compute",
        fmt_seconds(run.io_seconds),
        fmt_seconds(out30 / bw),
    )
    t.add_note(
        "input DMA overlaps compute (double buffering); only the result "
        "tail and transfer latencies are exposed — on the 30K workload the "
        "link is never the bottleneck, matching the paper's single-FPGA "
        "experience"
    )
    return t


def test_fig3_rasc_dataflow(paper_model, benchmark):
    """Benchmark the platform path; check overlap accounting."""
    rasc, run, cfg, index = benchmark.pedantic(run_dataflow, rounds=1, iterations=1)
    # ADR protocol was exercised.
    adr = rasc.fpgas[0].adr
    assert adr.read("STATUS") == 2  # done
    assert adr.read("RESULT_COUNT") == len(run.hits)
    assert adr.read("CYCLE_COUNT") == run.breakdown.total_cycles
    # I/O accounting: exposed I/O is never more than the naive sum.
    naive = rasc.fabric.io_seconds(run.plan)
    assert 0 <= run.io_seconds <= naive
    # Paper-scale projection: compute dominates the link by orders of
    # magnitude (the design is compute-bound, as the paper found).
    st = paper_model.bank_stats("30K")
    in30 = int((st.k0s.sum() + st.k1s.sum()) * (paper_model.psc_config(192).window + 4))
    bw = rasc.fabric.link.bandwidth_bytes_per_s
    assert in30 / bw < 0.05 * paper_model.accel_step2_seconds("30K", 192)
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("fig3_rasc_dataflow", table.render())


if __name__ == "__main__":
    print(build_table(get_model()).render())
