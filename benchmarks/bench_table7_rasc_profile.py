"""Table 7 — % of time per step on RASC with 192 PEs.

Paper numbers:

======  ====  ====  ====  ====
step      1K    3K   10K   30K
======  ====  ====  ====  ====
step 1   43%   31%   14%    6%
step 2   38%   35%   35%   37%
step 3   19%   34%   51%   57%
======  ====  ====  ====  ====

The shape the paper draws its conclusion from: once step 2 is
accelerated, indexing dominates small runs and **gapped extension becomes
the bottleneck at scale** (57 % at 30K) — motivating their proposed
second FPGA operator for step 3.
"""

from __future__ import annotations

from harness import BANK_LABELS, PAPER_TABLE7, get_model, write_table
from repro.util.reporting import TextTable


def fractions_for(model, label: str) -> tuple[float, float, float]:
    """Per-step shares of the modelled RASC-192 run."""
    sw = model.software_steps(label)
    accel = model.accel_step2_seconds(label, 192)
    total = sw.step1 + accel + sw.step3
    return sw.step1 / total, accel / total, sw.step3 / total


def build_table(model) -> TextTable:
    """Render Table 7 with paper values inline."""
    t = TextTable(
        "Table 7 — RASC 192-PE per-step shares",
        ["step"] + [f"{l} (paper)" for l in BANK_LABELS],
    )
    fracs = {l: fractions_for(model, l) for l in BANK_LABELS}
    for i, step in enumerate(("step 1", "step 2", "step 3")):
        t.add_row(
            step,
            *[
                f"{fracs[l][i]:.0%} ({PAPER_TABLE7[l][i]}%)"
                for l in BANK_LABELS
            ],
        )
    return t


def test_table7_rasc_profile(paper_model, benchmark):
    """Benchmark the profile projection; emit the table; check shape."""
    benchmark(fractions_for, paper_model, "30K")
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("table7_rasc_profile", table.render())
    fracs = {l: fractions_for(paper_model, l) for l in BANK_LABELS}
    # Step-1 share shrinks monotonically with bank size (43% -> 6%).
    s1 = [fracs[l][0] for l in BANK_LABELS]
    assert s1 == sorted(s1, reverse=True), s1
    assert s1[0] > 0.25 and s1[-1] < 0.12
    # Step-3 share grows monotonically and dominates at 30K.
    s3 = [fracs[l][2] for l in BANK_LABELS]
    assert s3 == sorted(s3), s3
    assert s3[-1] == max(fracs["30K"])
    # Step-2 share stays in a stable mid band, as in the paper.
    s2 = [fracs[l][1] for l in BANK_LABELS]
    assert all(0.2 < v < 0.55 for v in s2), s2


if __name__ == "__main__":
    print(build_table(get_model()).render())
