"""Ablation F — flank width N (the paper's unpublished window parameter).

The window ``W + 2N`` fixes both the PE shift-register length (hardware
cost: one cycle per residue per pair) and the context the ungapped filter
sees.  The paper never states its N.  This ablation sweeps N at matched
background selectivity and reports:

* the per-pair cycle cost (linear in the window — pure hardware price);
* the threshold needed to hold the background survivor rate at ~1e-4;
* the homolog pass rate at that matched threshold (sensitivity).

Reading: wider windows buy sensitivity sub-linearly while paying cycles
linearly — the paper's (and our) choice of a small N is the economical
point.
"""

from __future__ import annotations

import numpy as np

from harness import write_table
from repro.extend.stats import ungapped_params
from repro.extend.ungapped import ungapped_scores_paired
from repro.seqs.generate import mutate_protein, random_protein
from repro.seqs.matrices import BLOSUM62
from repro.util.reporting import TextTable

FLANKS = (4, 8, 12, 18, 26)
SPAN = 4
TARGET_RATE = 1e-4
N_PAIRS = 200_000


def score_samples(flank: int, seed: int = 3):
    """(background scores, homolog scores) for one window width.

    Both samples are conditioned the way real step-2 inputs are: the two
    windows share an identical seed word at the anchor (that is what made
    them a pair), so background scores start from the seed's self-score —
    without this conditioning any threshold comparison is meaningless.
    """
    rng = np.random.default_rng(seed)
    window = SPAN + 2 * flank
    buf_a = random_protein(rng, 400_000)
    buf_b = random_protein(rng, 400_000)
    lo, hi = flank, 400_000 - window
    a0 = rng.integers(lo, hi, N_PAIRS)
    a1 = rng.integers(lo, hi, N_PAIRS)
    # Plant identical seed words at both anchors.
    for k in range(SPAN):
        buf_b[a1 + k] = buf_a[a0 + k]
    background = ungapped_scores_paired(buf_a, a0, buf_b, a1, flank, window)
    hom_src = random_protein(rng, 200_000)
    hom_dst = mutate_protein(rng, hom_src, identity=0.4, indel_rate=0.0)
    h = rng.integers(lo, 200_000 - window, N_PAIRS // 4)
    for k in range(SPAN):
        hom_dst[h + k] = hom_src[h + k]
    homolog = ungapped_scores_paired(hom_src, h, hom_dst, h, flank, window)
    return background, homolog


def matched_threshold(background: np.ndarray) -> int:
    """Smallest threshold with background survivor rate ≤ TARGET_RATE."""
    for t in range(10, 200):
        if (background >= t).mean() <= TARGET_RATE:
            return t
    raise RuntimeError("threshold search failed")


def build_table() -> TextTable:
    t = TextTable(
        "Ablation F — flank width N at matched selectivity (1e-4/pair)",
        ["N", "window (cycles/pair)", "matched threshold",
         "homolog pass rate @40% id", "sensitivity per cycle"],
    )
    for flank in FLANKS:
        bg, hom = score_samples(flank)
        thr = matched_threshold(bg)
        pass_rate = float((hom >= thr).mean())
        window = SPAN + 2 * flank
        t.add_row(
            flank,
            window,
            thr,
            f"{pass_rate:.2%}",
            f"{pass_rate / window * 100:.2f}",
        )
    t.add_note(
        "pass rate = fraction of true 40%-identity windows surviving the "
        "filter; thresholds re-tuned per window to hold background fixed"
    )
    return t


def test_ablation_flank(benchmark):
    bg12, hom12 = benchmark.pedantic(
        score_samples, args=(12,), rounds=1, iterations=1
    )
    thr12 = matched_threshold(bg12)
    # Sanity: the default configuration's threshold lands near 45.
    assert 38 <= thr12 <= 52
    # Wider windows pass more homologs at matched selectivity…
    rates = {}
    for flank in (4, 12, 26):
        bg, hom = score_samples(flank)
        rates[flank] = float((hom >= matched_threshold(bg)).mean())
    assert rates[4] < rates[12] <= rates[26]
    # …but with diminishing returns per hardware cycle.
    eff = {f: rates[f] / (SPAN + 2 * f) for f in rates}
    assert eff[26] < eff[12] * 1.25
    table = build_table()
    print()
    print(table.render())
    write_table("ablation_flank", table.render())


if __name__ == "__main__":
    print(build_table().render())
