"""Ablation C — PE slot size (register-barrier depth).

The paper's pipeline structure "short and parallel data paths — instead of
long and shared data paths" trades per-batch fill overhead (more barriers)
against clock frequency and routability.  The simulator can quantify the
cycle-count side of that trade: smaller slots → more barrier stages → more
fill overhead per batch, with the effect largest on small banks (many
batches relative to compute).  The clock-frequency benefit is outside a
cycle model's scope — this ablation shows what the design *pays* in
cycles for its place-and-route friendliness.
"""

from __future__ import annotations

from harness import BANK_LABELS, get_model, write_table
from repro.util.reporting import TextTable

SLOT_SIZES = (4, 8, 16, 48)


def step2_seconds_for_slots(model, label: str, slot_size: int) -> float:
    """Modelled 192-PE step-2 seconds at one slot size."""
    cfg = model.psc_config(192)
    cfg = type(cfg)(
        n_pes=cfg.n_pes,
        slot_size=slot_size,
        window=cfg.window,
        threshold=cfg.threshold,
        matrix=cfg.matrix,
    )
    st = model.bank_stats(label)
    hits = int(st.pairs * model.rates.hit_rate)
    seconds, _ = model.platform.modeled_step2_seconds(
        st.k0s, st.k1s, hits, cfg, pair_overhead_cycles=model.pair_overhead
    )
    return seconds


def build_table(model) -> TextTable:
    """Render the slot-size ablation."""
    t = TextTable(
        "Ablation C — slot size vs step-2 time (192 PEs, seconds)",
        ["bank"] + [f"slot={s} ({-(-192 // s)} barriers)" for s in SLOT_SIZES]
        + ["overhead spread"],
    )
    for label in BANK_LABELS:
        times = [step2_seconds_for_slots(model, label, s) for s in SLOT_SIZES]
        spread = (max(times) - min(times)) / min(times)
        t.add_row(
            label, *[f"{x:,.1f}" for x in times], f"{spread:.2%}"
        )
    t.add_note(
        "deep pipelines cost little in cycles — which is why the paper "
        "could afford them to win clock frequency and routability"
    )
    return t


def test_ablation_slots(paper_model, benchmark):
    """Quantify barrier overhead; verify it is small but monotone."""
    benchmark(step2_seconds_for_slots, paper_model, "3K", 8)
    for label in ("1K", "30K"):
        times = [
            step2_seconds_for_slots(paper_model, label, s) for s in SLOT_SIZES
        ]
        # More barriers (smaller slots) never make the schedule faster.
        assert times == sorted(times, reverse=True), times
        # And the total cost of pipelining stays below a few percent.
        assert (times[0] - times[-1]) / times[-1] < 0.05
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("ablation_slots", table.render())


if __name__ == "__main__":
    print(build_table(get_model()).render())
