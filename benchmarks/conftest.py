"""Benchmark suite configuration.

Makes the local ``harness`` module importable regardless of pytest rootdir
and provides the shared :class:`~harness.PaperModel` as a fixture so the
expensive statistics/functional passes run once per session.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from harness import PaperModel, get_model  # noqa: E402


@pytest.fixture(scope="session")
def paper_model() -> PaperModel:
    """Session-cached paper-scale projection model."""
    return get_model()
