"""Table 3 — one vs two FPGAs (192 PEs each, raised threshold).

Paper numbers (step-2 seconds; threshold raised to thin result traffic
after host-link synchronisation problems):

========  =====  =====  =====  =====
            1K     3K    10K    30K
========  =====  =====  =====  =====
1 FPGA      168    223    510  1 373
2 FPGAs     148    175    330    759
speedup    1.14   1.27   1.54   1.80
========  =====  =====  =====  =====

The paper's poor small-bank scaling has a structural cause our model
reproduces: splitting the protein bank binomially thins every index
entry's K0 list, and entries whose half-list still needs the same number
of array batches (usually one) stream the *full* IL1 list again — so each
half costs nearly as much as the whole when lists are short.
"""

from __future__ import annotations

from harness import BANK_LABELS, PAPER_TABLE3, get_model, write_table
from repro.util.reporting import TextTable


def two_fpga_seconds(model, label: str) -> float:
    """Modelled wall seconds with the bank split across both FPGAs."""
    halves = model.split_bank_stats(label)
    times = [
        model.accel_step2_seconds(
            label, 192, raised=True, n_concurrent=2, stats=half
        )
        for half in halves
    ]
    return max(times)


def build_table(model) -> TextTable:
    """Render Table 3 with paper values inline."""
    t = TextTable(
        "Table 3 — 1 vs 2 FPGAs, 192 PEs, raised threshold (step-2 seconds)",
        ["config"] + [f"{l} (paper)" for l in BANK_LABELS],
    )
    one = {l: model.accel_step2_seconds(l, 192, raised=True) for l in BANK_LABELS}
    two = {l: two_fpga_seconds(model, l) for l in BANK_LABELS}
    t.add_row(
        "1 FPGA",
        *[f"{one[l]:,.0f} ({PAPER_TABLE3['1fpga'][l]:,})" for l in BANK_LABELS],
    )
    t.add_row(
        "2 FPGAs",
        *[f"{two[l]:,.0f} ({PAPER_TABLE3['2fpga'][l]:,})" for l in BANK_LABELS],
    )
    t.add_row(
        "speedup",
        *[
            f"{one[l] / two[l]:.2f} "
            f"({PAPER_TABLE3['1fpga'][l] / PAPER_TABLE3['2fpga'][l]:.2f})"
            for l in BANK_LABELS
        ],
    )
    t.add_note(
        "threshold raised by +10 as in the paper; 2-FPGA runs share the "
        "NUMAlink (fair-share bandwidth model) and split the bank binomially"
    )
    return t


def test_table3_two_fpgas(paper_model, benchmark):
    """Benchmark the dual projection; emit the table; check scaling shape."""
    benchmark(two_fpga_seconds, paper_model, "3K")
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("table3_two_fpgas", table.render())
    speedups = {
        l: paper_model.accel_step2_seconds(l, 192, raised=True)
        / two_fpga_seconds(paper_model, l)
        for l in BANK_LABELS
    }
    # Dual-FPGA gain grows with bank size and never reaches 2×.
    vals = [speedups[l] for l in BANK_LABELS]
    assert vals == sorted(vals), vals
    assert all(1.0 <= v < 2.0 for v in vals), vals
    # Large banks approach the paper's 1.8×.
    assert vals[-1] > 1.5


if __name__ == "__main__":
    print(build_table(get_model()).render())
