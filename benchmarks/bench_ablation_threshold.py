"""Ablation T — the ungapped threshold (selectivity/sensitivity dial).

The paper raises this threshold to thin result traffic (Table 3) but
never publishes its default.  This ablation sweeps the threshold on one
live workload and reports every quantity it governs:

* step-2 hit rate on background pairs (result traffic / link load);
* projected step-3 share of the sequential profile (Table 1's shape —
  the constraint that pinned our default at 45);
* homolog window pass rate at 50 % identity (sensitivity).

The Karlin tail makes the trade explicit: each +3 raw threshold cuts
background ≈ e^{λ·3} ≈ 2.6× while clipping progressively more twilight
homologs.
"""

from __future__ import annotations

import numpy as np

from bench_ablation_flank import score_samples
from harness import get_model, write_table
from repro.extend.stats import ungapped_params
from repro.seqs.matrices import BLOSUM62
from repro.util.reporting import TextTable

THRESHOLDS = (33, 39, 45, 51, 57)


def profile_share(model, hit_rate: float) -> float:
    """Projected step-3 share of the sequential software profile."""
    r = model.rates
    step2 = model.host.step2_seconds(model.config.window)  # per pair
    step3 = model.host.step3_seconds(
        hit_rate * r.gapped_per_hit * r.cells_per_gapped
    )  # per pair
    return step3 / (step2 + step3)


def build_table(model) -> TextTable:
    bg, hom = score_samples(flank=12)
    lam = ungapped_params(BLOSUM62).lam
    t = TextTable(
        "Ablation T — ungapped threshold sweep (N=12 window)",
        ["threshold", "background rate", "homolog pass @40% id",
         "step-3 share (software)", "Karlin tail prediction"],
    )
    base_rate = float((bg >= THRESHOLDS[0]).mean())
    for thr in THRESHOLDS:
        rate = float((bg >= thr).mean())
        pred = base_rate * float(np.exp(-lam * (thr - THRESHOLDS[0])))
        t.add_row(
            thr,
            f"{rate:.2e}",
            f"{float((hom >= thr).mean()):.2%}",
            f"{profile_share(model, rate):.1%}",
            f"{pred:.2e}",
        )
    t.add_note(
        "default 45 holds background ≈1e-4 and the step-3 share near the "
        "paper's 2.7% while keeping most 50%-identity homolog windows"
    )
    return t


def test_ablation_threshold(paper_model, benchmark):
    bg, hom = benchmark.pedantic(
        score_samples, args=(12,), rounds=1, iterations=1
    )
    lam = ungapped_params(BLOSUM62).lam
    rates = {t: float((bg >= t).mean()) for t in THRESHOLDS}
    # Monotone, and the tail decays at roughly the Karlin rate.
    vals = [rates[t] for t in THRESHOLDS]
    assert vals == sorted(vals, reverse=True)
    decay = rates[39] / max(rates[45], 1e-9)
    predicted = float(np.exp(lam * 6))
    assert 0.4 * predicted < decay < 2.5 * predicted
    # The default threshold keeps the software step-3 share in the
    # paper's band (Table 1: 2.7 %).
    share = profile_share(paper_model, rates[45])
    assert 0.005 < share < 0.12
    table = build_table(paper_model)
    print()
    print(table.render())
    write_table("ablation_threshold", table.render())


if __name__ == "__main__":
    print(build_table(get_model()).render())
