"""Serving benchmark: warm-bank pool vs cold one-shot runs.

Writes ``BENCH_serve.json``.  The number that matters: steady-state QPS
through the warm service (resident bank staged once, worker pool kept
alive) versus the cold path that pays bank indexing *and* pool spawn on
every request — the whole motivation for ``repro.serve``.  Also drives
the real HTTP stack with the stdlib load client (``repro-serve-bench``)
to record time-to-first-hit and shed-rate under concurrency, and checks
that every served response stays bit-identical to the cold pipeline.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.executor import live_segment_names
from repro.core.pipeline import SeedComparisonPipeline
from repro.seqs.generate import random_protein_bank
from repro.seqs.sequence import BankBuilder
from repro.serve import SearchService, ServiceConfig
from repro.serve.client import run_load
from repro.serve.server import SearchHTTPServer

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


AA = "ACDEFGHIKLMNPQRSTVWY"


def make_workload(quick: bool, seed: int = 29):
    """Random banks sharing a planted motif, so requests return real hits.

    Shaped like a real search service: the resident bank is large (so
    per-request indexing, staging, and pool spawn — the costs warm
    serving amortises — are a visible share of the request), while the
    motif is rare enough that only a handful of alignments survive to
    the gapped stage, which both arms pay identically in-process.
    """
    rng = np.random.default_rng(seed)
    n_resident = 40 if quick else 4000
    n_queries = 3 if quick else 8
    motif_every = 10 if quick else 1000
    motif = "".join(AA[i] for i in rng.integers(0, 20, 60))
    raw_res = random_protein_bank(
        rng, n_resident, mean_length=200, name_prefix="res"
    )
    raw_qry = random_protein_bank(
        rng, n_queries, mean_length=120, name_prefix="qry"
    )
    rb = BankBuilder()
    for i in range(len(raw_res)):
        text = raw_res[i].text()
        # every motif_every-th resident carries the family motif
        rb.add(raw_res.names[i], text + motif if i % motif_every == 0 else text)
    qb = BankBuilder()
    for i in range(len(raw_qry)):
        qb.add(raw_qry.names[i], raw_qry[i].text() + motif)
    return qb.build(), rb.build()


def _rows(alignments):
    return [
        (a["query"], a["subject"], *a["query_range"], *a["subject_range"],
         a["raw_score"], a["ungapped_score"], a["bit_score"], a["evalue"])
        for a in alignments
    ]


def _report_rows(report):
    return [
        (a.seq0_name, a.seq1_name, a.start0, a.end0, a.start1, a.end1,
         a.raw_score, a.ungapped_score, a.bit_score, a.evalue)
        for a in report.alignments
    ]


def _bench_config(workers: int) -> PipelineConfig:
    """Pipeline config used by both the cold and warm arms.

    ``min_pairs_per_shard=0`` forces the pooled step-2 engine at bench
    scale (same precedent as ``bench_step2_scaling``'s sharded modes):
    without it the cold path drops to the in-process small-workload
    fallback and never pays the pool spawn + bank staging that warm
    serving amortises, so the comparison would be between two different
    engines instead of between per-request and per-boot setup cost.
    """
    return PipelineConfig(workers=workers, min_pairs_per_shard=0)


def bench_cold(queries, resident, workers: int, requests: int):
    """One-shot runs: every request re-indexes the bank and spawns a pool."""
    walls = []
    rows = None
    for _ in range(requests):
        t0 = time.perf_counter()
        report = SeedComparisonPipeline(
            _bench_config(workers)
        ).compare_banks(queries, resident)
        walls.append(time.perf_counter() - t0)
        rows = _report_rows(report)
    total = sum(walls)
    return {
        "requests": requests,
        "wall_s": total,
        "mean_request_s": total / requests,
        "qps": requests / total,
    }, rows


def bench_warm(queries, resident, workers: int, requests: int, **service_kw):
    """Long-lived service: bank staged once, pool spawned once at boot.

    ``service_kw`` forwards to :class:`ServiceConfig` — the obs-overhead
    arm passes ``tracing=False`` to measure the same warm path with
    per-request span trees (and worker-span round-trips) disabled.
    """
    svc = SearchService(
        _bench_config(workers),
        resident,
        ServiceConfig(workers=workers, **service_kw),
    )
    t0 = time.perf_counter()
    svc.start(warm=True)
    boot_s = time.perf_counter() - t0
    try:
        walls = []
        rows = None
        for _ in range(requests):
            t0 = time.perf_counter()
            out = svc.submit(queries)
            walls.append(time.perf_counter() - t0)
            assert out["code"] == 200, out
            rows = _rows(out["alignments"])
        total = sum(walls)
        return {
            "requests": requests,
            "boot_s": boot_s,
            "wall_s": total,
            "mean_request_s": total / requests,
            "qps": requests / total,
        }, rows
    finally:
        svc.drain(timeout=30)


def measure_obs_overhead(queries, resident, workers: int, requests: int):
    """Tracing-on vs tracing-off warm QPS, paired per request.

    Whole-arm comparisons cannot resolve a few-percent effect against
    machine drift (back-to-back identical arms vary by ~10% on shared
    runners), so the two modes run as *twin* warm services and requests
    alternate between them, flipping the order each pair — drift on any
    timescale longer than one request cancels out of the paired totals.
    One untimed warm-up request per service keeps lazy first-request
    costs out of the comparison.
    """
    twins = {
        True: SearchService(
            _bench_config(workers), resident, ServiceConfig(workers=workers)
        ),
        False: SearchService(
            _bench_config(workers),
            resident,
            ServiceConfig(workers=workers, tracing=False),
        ),
    }
    wall = {True: 0.0, False: 0.0}
    try:
        for svc in twins.values():
            svc.start(warm=True)
            assert svc.submit(queries)["code"] == 200  # warm-up, untimed
        for i in range(requests):
            order = (True, False) if i % 2 == 0 else (False, True)
            for tracing in order:
                t0 = time.perf_counter()
                out = twins[tracing].submit(queries)
                wall[tracing] += time.perf_counter() - t0
                assert out["code"] == 200, out
    finally:
        for svc in twins.values():
            svc.drain(timeout=30)
    qps_on = requests / wall[True]
    qps_off = requests / wall[False]
    return {
        "qps_obs_on": qps_on,
        "qps_obs_off": qps_off,
        "overhead_fraction": 1.0 - qps_on / qps_off,
    }


def bench_http(queries, resident, workers: int, requests: int, concurrency: int):
    """The full stack: HTTP server + threaded stdlib load client."""
    svc = SearchService(
        _bench_config(workers), resident, ServiceConfig(workers=workers)
    )
    svc.start(warm=True)
    server = SearchHTTPServer(("127.0.0.1", 0), svc)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[0], server.server_address[1]
        pairs = [
            (queries.names[i], queries[i].text()) for i in range(len(queries))
        ]
        summary = run_load(
            host, port, [pairs] * requests, concurrency=concurrency
        )
        summary.pop("results", None)
        return summary
    finally:
        server.drain_and_shutdown(timeout=30)
        server.server_close()
        thread.join(timeout=10)


def run_benchmark(quick: bool, workers: int = 2, requests: int | None = None):
    queries, resident = make_workload(quick)
    n = requests if requests is not None else (4 if quick else 12)
    cold, cold_rows = bench_cold(queries, resident, workers, n)
    # The default service traces every request (span tree + flight
    # record + SLO accounting), so "warm" is the obs-on measurement;
    # the tracing=False twin run by measure_obs_overhead isolates the
    # observability cost. The dark arm here only checks bit-identity.
    warm, warm_rows = bench_warm(queries, resident, workers, n)
    _, dark_rows = bench_warm(queries, resident, workers, 1, tracing=False)
    obs_overhead = measure_obs_overhead(queries, resident, workers, n)
    http = bench_http(queries, resident, workers, n, concurrency=2)
    return {
        "workload": {
            "quick": quick,
            "workers": workers,
            "resident_sequences": len(resident),
            "resident_residues": int(resident.total_residues),
            "query_sequences": len(queries),
            "alignments_per_request": len(cold_rows),
        },
        "cold": cold,
        "warm": warm,
        "http": http,
        "obs_overhead": obs_overhead,
        "warm_over_cold_speedup": warm["qps"] / cold["qps"],
        "bit_identical": warm_rows == cold_rows and dark_rows == cold_rows,
        "live_segments_after": list(live_segment_names()),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smoke-scale workload")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    report = run_benchmark(args.quick, args.workers, args.requests)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    w = report["workload"]
    print(
        f"workload: {w['resident_sequences']} resident seqs "
        f"({w['resident_residues']:,} aa), {w['query_sequences']} queries, "
        f"{w['alignments_per_request']} alignments/request"
    )
    for label in ("cold", "warm"):
        m = report[label]
        print(
            f"{label:>5}: {m['qps']:8.2f} qps  "
            f"({m['mean_request_s'] * 1e3:8.1f} ms/request)"
        )
    ttfh = report["http"]["time_to_first_hit_seconds"]
    print(f" http: {report['http']['qps']:8.2f} qps  "
          f"ttfh={'n/a' if ttfh is None else f'{ttfh:.3f}s'}  "
          f"shed_rate={report['http']['shed_rate']:.2f}")
    obs = report["obs_overhead"]
    print(
        f"  obs: {obs['qps_obs_on']:8.2f} qps on / "
        f"{obs['qps_obs_off']:8.2f} qps off  "
        f"(overhead {obs['overhead_fraction'] * 100:+.1f}%)"
    )
    print(f"warm speedup vs cold: {report['warm_over_cold_speedup']:.2f}x")
    print(f"bit identical: {report['bit_identical']}")
    print(f"wrote {args.out}")
    ok = (
        report["bit_identical"]
        and report["warm_over_cold_speedup"] > 1.0
        and not report["live_segments_after"]
    )
    return 0 if ok else 1


def test_serve_bench_smoke(tmp_path):
    """Pytest smoke: structure and bit-identity.

    Timing claims are ``main()``'s job (it gates the committed
    ``BENCH_serve.json`` on warm-beats-cold); the smoke only asserts
    shape, service health, and bit-identity so CI stays robust to
    noisy shared runners.
    """
    report = run_benchmark(quick=True, workers=2, requests=3)
    assert report["bit_identical"]
    assert report["warm_over_cold_speedup"] > 0
    assert report["workload"]["alignments_per_request"] > 0
    assert report["http"]["served"] == 3
    assert report["http"]["shed"] == 0 and report["http"]["errors"] == 0
    assert report["obs_overhead"]["qps_obs_on"] > 0
    assert report["obs_overhead"]["qps_obs_off"] > 0
    assert report["live_segments_after"] == []
    out = tmp_path / "BENCH_serve.json"
    out.write_text(json.dumps(report))
    assert json.loads(out.read_text())["warm"]["qps"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
