"""Extension — empirical validation of the E-value machinery.

Not a paper table, but a prerequisite for one: Table 6 compares engines at
``E ≤ 10⁻³``, which only means something if reported E-values are
calibrated.  This bench samples optimal local-alignment scores between
random sequences and checks them against the Karlin–Altschul law the
pipeline uses — recovering λ from data and comparing exceedance curves.
"""

from __future__ import annotations

import numpy as np

from harness import write_table
from repro.eval.calibration import (
    evalue_calibration,
    sample_gapped_scores,
    sample_ungapped_scores,
)
from repro.extend.stats import gapped_params, ungapped_params
from repro.seqs.matrices import BLOSUM62
from repro.util.reporting import TextTable


def run_validation():
    rng = np.random.default_rng(1234)
    ungapped = sample_ungapped_scores(rng, n_pairs=300, m=150, n=150)
    gapped = sample_gapped_scores(rng, n_pairs=80, m=100, n=100)
    return (
        evalue_calibration(ungapped, ungapped_params(BLOSUM62)),
        evalue_calibration(gapped, gapped_params("BLOSUM62", 11, 1)),
    )


def build_table() -> TextTable:
    rep_u, rep_g = run_validation()
    t = TextTable(
        "Extension — Karlin–Altschul calibration on random sequences",
        ["regime", "λ fitted", "λ published", "rel. error", "curve sup-error"],
    )
    t.add_row(
        "ungapped (BLOSUM62)",
        f"{rep_u.fitted_lambda:.4f}",
        f"{rep_u.published_lambda:.4f}",
        f"{rep_u.lambda_relative_error:.1%}",
        f"{rep_u.max_abs_error:.3f}",
    )
    t.add_row(
        "gapped (BLOSUM62 11/1)",
        f"{rep_g.fitted_lambda:.4f}",
        f"{rep_g.published_lambda:.4f}",
        f"{rep_g.lambda_relative_error:.1%}",
        f"{rep_g.max_abs_error:.3f}",
    )
    t.add_note(
        "gapped λ at m=n=100 carries known finite-size bias; the ungapped "
        "fit validates the statistics the pipeline's E-values stand on"
    )
    return t


def test_statistics_validation(benchmark):
    rep_u, rep_g = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    assert rep_u.lambda_relative_error < 0.2
    assert rep_u.max_abs_error < 0.15
    assert 0.1 < rep_g.fitted_lambda < 0.45
    table = build_table()
    print()
    print(table.render())
    write_table("extension_statistics", table.render())


if __name__ == "__main__":
    print(build_table().render())
