"""Ablation B — seed model: exact 4-mers vs subset-seed patterns.

The paper adopts subset seeds because they are "very efficient for
indexing the protein sequences" at equal theoretical sensitivity.  This
ablation measures the trade-off space on live data: key-space size,
index-list balance, step-2 pair volume (hardware cost), seed hit rate on
true homologs (sensitivity proxy) and on background (selectivity proxy).
"""

from __future__ import annotations

import numpy as np

from harness import write_table
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.index.subset_seed import SubsetSeedModel
from repro.seqs.generate import mutate_protein, random_protein
from repro.seqs.sequence import Sequence, SequenceBank
from repro.util.reporting import TextTable

SEEDS = [
    ("####  (exact 4-mer)", ContiguousSeedModel(4)),
    ("#11#", SubsetSeedModel.from_pattern("#11#")),
    ("1111", SubsetSeedModel.from_pattern("1111")),
    ("#44#", SubsetSeedModel.from_pattern("#44#")),
]


def measure(model, rng_seed=9):
    """(homolog pairs, background pairs, key space, weight) for one seed."""
    rng = np.random.default_rng(rng_seed)
    p = random_protein(rng, 20_000)
    hom = mutate_protein(rng, p, identity=0.5, indel_rate=0.0)
    bg = random_protein(rng, 20_000)
    b0 = SequenceBank([Sequence("p", p)], pad=16)
    b_hom = SequenceBank([Sequence("h", hom)], pad=16)
    b_bg = SequenceBank([Sequence("b", bg)], pad=16)
    hom_pairs = TwoBankIndex.build(b0, b_hom, model).total_pairs
    bg_pairs = TwoBankIndex.build(b0, b_bg, model).total_pairs
    weight = model.weight() if isinstance(model, SubsetSeedModel) else float(model.w)
    return hom_pairs, bg_pairs, model.key_space, weight


def build_table() -> TextTable:
    """Render the seed ablation."""
    t = TextTable(
        "Ablation B — seed models (20 kaa homolog at 50% id vs background)",
        ["seed", "weight", "key space", "homolog pairs", "background pairs",
         "sensitivity/selectivity gain"],
    )
    base = measure(ContiguousSeedModel(4))
    for name, model in SEEDS:
        hom, bg, space, weight = measure(model)
        gain = (hom / base[0]) / max(1e-9, bg / base[1])
        t.add_row(
            name, f"{weight:.2f}", f"{space:,}", f"{hom:,}", f"{bg:,}",
            f"{gain:.2f}",
        )
    t.add_note(
        "gain > 1: the seed recovers homolog windows faster than it "
        "admits background — the subset-seed design point of [Peterlongo]"
    )
    return t


def test_ablation_seeds(benchmark):
    """Verify the subset-seed claim: better sensitivity per selectivity."""
    benchmark.pedantic(measure, args=(SEEDS[1][1],), rounds=1, iterations=1)
    results = {name: measure(model) for name, model in SEEDS}
    exact = results["####  (exact 4-mer)"]
    subset = results["#11#"]
    # Subset seeds find more homolog seed pairs than exact 4-mers…
    assert subset[0] > exact[0]
    # …at a better sensitivity/selectivity exchange rate.
    exact_rate = exact[0] / max(1, exact[1])
    subset_rate = subset[0] / max(1, subset[1])
    assert subset_rate > exact_rate * 0.9
    table = build_table()
    print()
    print(table.render())
    write_table("ablation_seeds", table.render())


if __name__ == "__main__":
    print(build_table().render())
