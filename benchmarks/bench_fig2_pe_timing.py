"""Figure 2 — PE architecture, exercised as cycle-exact phase timing.

Figure 2 shows the PE datapath: shift register with feedback loop,
substitution ROM, adder/max unit.  This bench demonstrates the two-phase
protocol the figure implies and verifies its cycle costs:

* initialisation — exactly ``W + 2N`` cycles to load the IL0 window;
* computation — exactly ``W + 2N`` cycles per IL1 window, with the
  feedback loop restoring the shift register so one load amortises over
  arbitrarily many computations;
* the datapath score equals the scalar reference recurrence bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from harness import write_table
from repro.extend.ungapped import ungapped_score_reference
from repro.hwsim.memory import Rom
from repro.psc.pe import ProcessingElement
from repro.seqs.matrices import BLOSUM62
from repro.util.reporting import TextTable


def pe_phase_cycles(window: int, n_il1: int) -> tuple[int, int, int]:
    """(load cycles, compute cycles, rom reads) measured on a real PE."""
    rng = np.random.default_rng(0)
    rom = Rom.substitution_rom(BLOSUM62)
    pe = ProcessingElement(window, rom)
    w0 = rng.integers(0, 20, window).astype(np.uint8)
    pe.begin_load()
    load = 0
    for r in w0:
        pe.load_shift(int(r))
        load += 1
    compute = 0
    for _ in range(n_il1):
        w1 = rng.integers(0, 20, window).astype(np.uint8)
        got = pe.compute_window(w1)
        assert got == ungapped_score_reference(w0, w1)
        compute += window
    return load, compute, rom.reads


def build_table() -> TextTable:
    """Render the PE timing demonstration."""
    t = TextTable(
        "Figure 2 — PE two-phase timing (cycle-exact)",
        ["window W+2N", "IL1 windows", "load cycles", "compute cycles",
         "cycles/pair", "amortised load/pair"],
    )
    for window, n_il1 in ((28, 1), (28, 16), (28, 256), (40, 256)):
        load, compute, _ = pe_phase_cycles(window, n_il1)
        t.add_row(
            window,
            n_il1,
            load,
            compute,
            f"{compute / n_il1:.0f}",
            f"{load / n_il1:.2f}",
        )
    t.add_note(
        "the feedback loop makes the load cost vanish as IL1 lists grow — "
        "the mechanism behind the paper's one-pair-per-L-cycles throughput"
    )
    return t


def test_fig2_pe_timing(benchmark):
    """Benchmark the PE datapath; verify Figure 2's cycle claims."""
    load, compute, rom_reads = benchmark.pedantic(
        pe_phase_cycles, args=(28, 16), rounds=1, iterations=1
    )
    assert load == 28  # initialisation = W+2N cycles
    assert compute == 16 * 28  # one residue pair per cycle
    assert rom_reads == compute  # one ROM access per compute cycle
    table = build_table()
    print()
    print(table.render())
    write_table("fig2_pe_timing", table.render())


if __name__ == "__main__":
    print(build_table().render())
