"""Kernel microbenchmarks (pytest-benchmark).

Throughput of the hot primitives underneath every experiment: window
scoring, seed-key extraction, gapped DP, PE datapath stepping and the
behavioural operator.  These are the numbers to watch when optimising —
the tables' wall-clock at bench scale is dominated by them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.extend.gapped import smith_waterman, xdrop_gapped_extend
from repro.extend.ungapped import ungapped_scores, ungapped_scores_paired
from repro.hwsim.fifo import SyncFifo
from repro.hwsim.memory import Rom
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex, extract_keys
from repro.index.subset_seed import DEFAULT_SUBSET_SEED
from repro.psc.behavioral import PscBehavioral
from repro.psc.pe import ProcessingElement
from repro.psc.schedule import PscArrayConfig
from repro.seqs.generate import random_genome, random_protein, random_protein_bank
from repro.seqs.matrices import BLOSUM62
from repro.seqs.translate import translate_six_frames


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_bench_paired_window_scoring(rng, benchmark):
    """Flat step-2 kernel: ~50M window cells per call."""
    buf = random_protein(rng, 2_000_000)
    n = 1 << 20
    a0 = rng.integers(16, buf.shape[0] - 44, n)
    a1 = rng.integers(16, buf.shape[0] - 44, n)
    out = benchmark(
        ungapped_scores_paired, buf, a0, buf, a1, 12, 28, BLOSUM62
    )
    assert out.shape == (n,)


def test_bench_outer_window_scoring(rng, benchmark):
    """Per-entry outer-product kernel (256×256 pairs)."""
    w0 = rng.integers(0, 20, (256, 28)).astype(np.uint8)
    w1 = rng.integers(0, 20, (256, 28)).astype(np.uint8)
    out = benchmark(ungapped_scores, w0, w1, BLOSUM62)
    assert out.shape == (256, 256)


def test_bench_key_extraction_subset(rng, benchmark):
    """Subset-seed key extraction over 1 Maa."""
    buf = random_protein(rng, 1_000_000)
    keys, valid = benchmark(extract_keys, buf, DEFAULT_SUBSET_SEED)
    assert keys.shape[0] == buf.shape[0] - 3


def test_bench_index_join(rng, benchmark):
    """Two-bank index build + join on a mid-size workload."""
    b0 = random_protein_bank(rng, 200, mean_length=300, name_prefix="a")
    b1 = random_protein_bank(rng, 200, mean_length=300, name_prefix="b")
    idx = benchmark(TwoBankIndex.build, b0, b1, DEFAULT_SUBSET_SEED)
    assert idx.total_pairs > 0


def test_bench_six_frame_translation(rng, benchmark):
    """6-frame translation of 1 Mnt."""
    genome = random_genome(rng, 1_000_000)
    frames = benchmark(translate_six_frames, genome.codes)
    assert len(frames) == 6


def test_bench_smith_waterman(rng, benchmark):
    """Full SW with traceback, 300×300."""
    a = random_protein(rng, 300)
    b = random_protein(rng, 300)
    al = benchmark(smith_waterman, a, b)
    assert al.score >= 0


def test_bench_xdrop_gapped(rng, benchmark):
    """Gapped X-drop extension on a 60%-identity pair."""
    from repro.seqs.generate import mutate_protein

    a = random_protein(rng, 600)
    b = mutate_protein(rng, a, identity=0.6)
    anchor = 300
    ge = benchmark(
        xdrop_gapped_extend, a, anchor, b, min(anchor, len(b) - 1)
    )
    assert ge.score >= 0


def test_bench_pe_datapath(rng, benchmark):
    """Cycle-level PE: one load + 64 window computations."""
    rom = Rom.substitution_rom(BLOSUM62)
    w0 = rng.integers(0, 20, 28).astype(np.uint8)
    windows = rng.integers(0, 20, (64, 28)).astype(np.uint8)

    def run():
        pe = ProcessingElement(28, rom)
        pe.begin_load()
        for r in w0:
            pe.load_shift(int(r))
        return [pe.compute_window(w) for w in windows]

    scores = benchmark(run)
    assert len(scores) == 64


def test_bench_behavioral_operator(rng, benchmark):
    """Behavioural PSC run over a live index."""
    b0 = random_protein_bank(rng, 60, mean_length=200, name_prefix="q")
    b1 = random_protein_bank(rng, 60, mean_length=200, name_prefix="s")
    idx = TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))
    beh = PscBehavioral(PscArrayConfig(n_pes=64, window=3 + 24, threshold=30))
    result = benchmark(beh.run_index, idx, 12)
    assert result.breakdown.total_cycles > 0


def test_bench_fifo_throughput(benchmark):
    """SyncFifo push/pop/commit cycle cost."""
    fifo = SyncFifo(64)

    def run():
        for i in range(32):
            fifo.push(i)
        fifo.commit()
        out = [fifo.pop() for _ in range(32)]
        fifo.commit()
        return out

    out = benchmark(run)
    assert out == list(range(32))
