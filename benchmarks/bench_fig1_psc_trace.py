"""Figure 1 — PSC operator architecture, exercised as an execution trace.

Figure 1 of the paper is the operator block diagram (input controllers,
PE slots behind register barriers, cascaded result FIFOs, output and
master controllers).  A diagram has no data series to regenerate, so this
bench *exercises* the architecture: the cycle-level simulator runs a
workload and we report the per-phase cycle budget, per-slot result
traffic and the drain behaviour — the quantities the diagram's structure
exists to manage.
"""

from __future__ import annotations

import numpy as np

from harness import get_model, write_table
from repro.index.kmer import ContiguousSeedModel, TwoBankIndex
from repro.psc.operator import PscOperator
from repro.psc.schedule import PscArrayConfig
from repro.psc.workload import build_jobs
from repro.seqs.generate import random_protein_bank
from repro.util.reporting import TextTable


def run_trace(n_pes: int = 16, slot_size: int = 4, threshold: int = 20):
    """Cycle-simulate a small workload; return (operator, result, config)."""
    rng = np.random.default_rng(42)
    b0 = random_protein_bank(rng, 20, mean_length=120, name_prefix="q")
    b1 = random_protein_bank(rng, 30, mean_length=120, name_prefix="s")
    index = TwoBankIndex.build(b0, b1, ContiguousSeedModel(3))
    cfg = PscArrayConfig(
        n_pes=n_pes, slot_size=slot_size, window=3 + 2 * 8, threshold=threshold
    )
    op = PscOperator(cfg)
    result = op.run(build_jobs(index, flank=8, window=cfg.window))
    return op, result, cfg, index


def build_table() -> TextTable:
    """Render the architecture trace report."""
    op, result, cfg, index = run_trace()
    b = result.breakdown
    t = TextTable(
        "Figure 1 — PSC operator execution trace (cycle-level simulation)",
        ["quantity", "value"],
    )
    t.add_row("PE array", f"{cfg.n_pes} PEs in {cfg.n_slots} slots of {cfg.slot_size}")
    t.add_row("entries processed", f"{index.n_shared_keys}")
    t.add_row("pairs scored", f"{index.total_pairs}")
    t.add_row("load cycles (input controller 0)", f"{b.load_cycles:,}")
    t.add_row("compute cycles (input controller 1)", f"{b.compute_cycles:,}")
    t.add_row("control/barrier overhead cycles", f"{b.overhead_cycles:,}")
    t.add_row("drain tail + flush cycles", f"{b.total_cycles - b.schedule_end:,}")
    t.add_row("total cycles", f"{b.total_cycles:,}")
    t.add_row("PE utilisation (compute phases)", f"{b.utilization:.1%}")
    t.add_row("results (over threshold)", f"{len(result)}")
    per_slot = [slot.results_produced for slot in op.slots]
    t.add_row("per-slot result traffic", "/".join(map(str, per_slot)))
    busy = [pe.busy_cycles for pe in op.pes]
    t.add_row(
        "PE busy-cycle spread (min/median/max)",
        f"{min(busy)}/{int(np.median(busy))}/{max(busy)}",
    )
    t.add_note("the SIMD broadcast keeps PE busy-cycles equal within batches;")
    t.add_note("the spread reflects partial final batches only")
    return t


def waveform_demo() -> str:
    """Full-system single-entry run with live signal traces.

    Wires DMA sources, input FIFOs, the PE array and the result cascade
    under the two-phase simulator, with a tracer sampling FIFO depths and
    the controller phase every clock — the closest this reproduction gets
    to looking at Figure 1 on a logic analyser.
    """
    import numpy as np

    from repro.hwsim.trace import Probe, Tracer
    from repro.psc.system import PscSystem
    from repro.psc.workload import EntryJob

    rng = np.random.default_rng(12)
    window = 3 + 2 * 8
    job = EntryJob(
        key=0,
        offsets0=np.arange(8, dtype=np.int64),
        offsets1=np.arange(48, dtype=np.int64),
        windows0=rng.integers(0, 20, (8, window)).astype(np.uint8),
        windows1=rng.integers(0, 20, (48, window)).astype(np.uint8),
    )
    cfg = PscArrayConfig(n_pes=8, slot_size=4, window=window, threshold=18)
    system = PscSystem(cfg, job)
    phase_code = {"load": 1, "compute": 2, "done": 0}
    tracer = system.sim.add(
        Tracer(
            [
                Probe.fifo_depth("il0_fifo", system.array.il0),
                Probe.fifo_depth("il1_fifo", system.array.il1),
                Probe("phase", lambda: phase_code[system.array.phase]),
                Probe(
                    "cascade",
                    lambda: system.array.cascade.occupancy(),
                ),
            ]
        )
    )
    result = system.run()
    lines = [
        f"full-system run: {len(result.records)} records in {result.cycles} "
        f"cycles (stalls: load={result.load_stall_cycles}, "
        f"compute={result.compute_stall_cycles})",
        tracer.waveform("phase", width=68),
        tracer.waveform("il1_fifo", width=68),
        tracer.waveform("cascade", width=68),
    ]
    return "\n".join(lines)


def test_fig1_psc_trace(benchmark):
    """Benchmark the cycle simulation; emit the trace; check structure."""
    op, result, cfg, index = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    b = result.breakdown
    # Cycle budget is fully accounted for.
    assert b.schedule_end == b.load_cycles + b.compute_cycles + b.overhead_cycles
    # Every slot participates in result management.
    assert sum(s.results_produced for s in op.slots) == len(result)
    table = build_table()
    waves = waveform_demo()
    print()
    print(table.render())
    print()
    print(waves)
    write_table("fig1_psc_trace", table.render() + "\n\n" + waves)


if __name__ == "__main__":
    print(build_table().render())
    print()
    print(waveform_demo())
