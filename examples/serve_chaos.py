"""End-to-end serve chaos drill: the CI ``serve-chaos`` job's driver.

Boots a real ``repro-psc serve`` process on the demo protein bank with a
pinned fault plan (three pool deaths — enough to trip the breaker — plus
one staged-bank corruption), drives it over HTTP with the stdlib load
client, and asserts the full resilience story from the *outside*:

1. every non-shed request is served (the supervisor rebuilds the pool,
   the CRC check self-heals the staged bank),
2. the circuit breaker trips, then closes again after its dwell,
3. the ``/metrics`` scrape validates against the checked-in serve schema,
4. SIGTERM drains cleanly: exit code 0 and no shared-memory segments
   leaked in ``/dev/shm``.

Run:  PYTHONPATH=src python examples/serve_chaos.py [--port N]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DATA = REPO / "examples" / "data" / "demo_proteins.fasta"

#: Pinned chaos plan: breaker threshold (3) consecutive pool deaths on
#: the first three requests, a corrupted staged bank on the fifth.
FAULT_PLAN = {
    "seed": 20260808,
    "specs": [
        {"kind": "pool-death", "request": 0},
        {"kind": "pool-death", "request": 1},
        {"kind": "pool-death", "request": 2},
        {"kind": "corrupt-warm-bank", "request": 4},
    ],
}

BREAKER_RESET_SECONDS = 1.0


def get_json(port: int, path: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as resp:
        return json.loads(resp.read())


def wait_ready(port: int, proc: subprocess.Popen, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"server exited early with {proc.returncode}")
        try:
            if get_json(port, "/readyz").get("ready"):
                return
        except OSError:
            time.sleep(0.2)
    raise SystemExit("server never became ready")


def drive(port: int, requests: int, out: Path) -> dict:
    cmd = [
        sys.executable, "-m", "repro.serve.client",
        "--port", str(port), "--fasta", str(DATA),
        # the full demo bank per request: small query sets can fall below
        # the warm pool's n_shared_keys cutoff and route in-process, which
        # would never exercise the injected pool deaths
        "--requests", str(requests), "--per-request", "6",
        "--concurrency", "1", "--out", str(out),
    ]
    subprocess.run(cmd, check=True, cwd=REPO)
    return json.loads(out.read_text())


def shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # platform without a visible shm mount
        return set()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8641)
    args = parser.parse_args(argv)

    shm_before = shm_entries()
    with tempfile.TemporaryDirectory(prefix="serve-chaos") as tmp:
        plan_path = Path(tmp) / "plan.json"
        plan_path.write_text(json.dumps(FAULT_PLAN))
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(DATA),
                "--port", str(args.port), "--workers", "2",
                "--fault-plan", str(plan_path),
                "--breaker-threshold", "3",
                "--breaker-reset-seconds", str(BREAKER_RESET_SECONDS),
            ],
            cwd=REPO,
        )
        try:
            wait_ready(args.port, server)

            # Phase 1: six requests through the chaos plan.  Requests 0-2
            # each kill the pool (supervisor rebuilds, request still
            # served); the third trips the breaker, so request 3 runs
            # degraded; request 4 additionally corrupts the staged bank.
            summary = drive(args.port, 6, Path(tmp) / "load1.json")
            assert summary["served"] == 6, summary
            assert summary["errors"] == 0, summary
            health = get_json(args.port, "/healthz")
            assert health["breaker_trips"] == 1, health
            assert health["bank_heals"] == 1, health
            print("phase 1 ok: 6/6 served through pool deaths + corruption")

            # Phase 2: past the dwell, the half-open probe must close the
            # breaker again.
            time.sleep(BREAKER_RESET_SECONDS + 0.2)
            summary = drive(args.port, 2, Path(tmp) / "load2.json")
            assert summary["served"] == 2, summary
            health = get_json(args.port, "/healthz")
            assert health["breaker"] == "closed", health
            assert health["breaker_trips"] == 1, health
            print("phase 2 ok: breaker re-closed after its dwell")

            # Phase 3: the metrics scrape honours the checked-in schema.
            scrape = Path(tmp) / "metrics.prom"
            with urllib.request.urlopen(
                f"http://127.0.0.1:{args.port}/metrics", timeout=10
            ) as resp:
                scrape.write_bytes(resp.read())
            subprocess.run(
                [
                    sys.executable, "-m", "repro.obs.export", str(scrape),
                    "--kind", "serve-metrics",
                    "--schema", str(REPO / "schemas" / "serve_metrics.schema.json"),
                ],
                check=True, cwd=REPO,
            )
            print("phase 3 ok: /metrics matches schemas/serve_metrics.schema.json")
        finally:
            if server.poll() is None:
                server.send_signal(signal.SIGTERM)
            rc = server.wait(timeout=60)

    assert rc == 0, f"server exited {rc} after SIGTERM"
    leaked = shm_entries() - shm_before
    assert not leaked, f"shared memory leaked: {sorted(leaked)}"
    print("phase 4 ok: clean SIGTERM drain, zero shm leaks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
