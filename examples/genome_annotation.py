"""Genome annotation — the paper's motivating workflow.

"Typically, it is included in bioinformatics workflows for annotating new
sequenced genomes.  From a set of known proteins, the aim is to locate in
the genome regions having significant similarities."  (§1)

This example plays that workflow end to end on synthetic data:

1. a "newly sequenced" 400 knt genome is built containing divergent copies
   of 8 known protein families (plus background);
2. a reference bank of known proteins (the family ancestors plus decoys)
   is compared against the genome with the accelerated pipeline;
3. alignments are mapped from frame coordinates back to genomic
   coordinates and merged into *annotation features* (gene candidates);
4. the annotation is checked against the planted ground truth and printed
   as a GFF-like feature table.

Run:  python examples/genome_annotation.py
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ComparisonReport
from repro.eval import frame_interval
from repro.rasc import AcceleratedPipeline
from repro.seqs import (
    Sequence,
    SequenceBank,
    make_family,
    plant_homologs,
    random_genome,
    random_protein_bank,
)


@dataclass
class Feature:
    """One annotated gene candidate on the genome."""

    protein: str
    start: int
    end: int
    strand: str
    bits: float
    evalue: float


def annotate(report: ComparisonReport, genome_length: int) -> list[Feature]:
    """Convert alignments to genomic features, merging frame overlaps."""
    features: list[Feature] = []
    for a in report:
        start, end = frame_interval(a.seq1_name, a.start1, a.end1, genome_length)
        strand = "+" if "+1" in a.seq1_name or "+2" in a.seq1_name or "+3" in a.seq1_name else "-"
        merged = False
        for f in features:
            if f.protein == a.seq0_name and start < f.end and f.start < end:
                f.start = min(f.start, start)
                f.end = max(f.end, end)
                f.bits = max(f.bits, a.bit_score)
                f.evalue = min(f.evalue, a.evalue)
                merged = True
                break
        if not merged:
            features.append(
                Feature(a.seq0_name, start, end, strand, a.bit_score, a.evalue)
            )
    features.sort(key=lambda f: f.start)
    return features


def main() -> None:
    rng = np.random.default_rng(404)

    # Known protein families and the genome carrying divergent copies.
    families = [
        make_family(rng, i, int(rng.integers(150, 350)), n_members=1,
                    identity_range=(0.55, 0.8))
        for i in range(8)
    ]
    genome = random_genome(rng, 400_000, name="novel_genome")
    genome, truth = plant_homologs(rng, genome, families)

    # Reference bank: ancestors of the real families + unrelated decoys.
    known = [Sequence(f"KNOWN_{f.family_id:02d}", f.ancestor) for f in families]
    decoys = list(random_protein_bank(rng, 40, name_prefix="DECOY_"))
    bank = SequenceBank(known + decoys)
    print(f"annotating {len(genome):,} nt with {len(bank)} known proteins "
          f"({len(truth)} true genes planted)\n")

    pipeline = AcceleratedPipeline()
    result = pipeline.run(bank, genome)
    features = annotate(result.report, len(genome))

    print("seqname        source  feature  start    end      strand  bits    evalue")
    for f in features:
        print(f"novel_genome   repro   CDS      {f.start:<8} {f.end:<8} "
              f"{f.strand:<7} {f.bits:<7.1f} {f.evalue:.1e}")

    # Validate against ground truth.
    hits = 0
    for t in truth:
        covered = any(
            f.protein == f"KNOWN_{t.family_id:02d}"
            and f.start < t.genome_end
            and t.genome_start < f.end
            for f in features
        )
        hits += covered
    decoy_features = [f for f in features if f.protein.startswith("DECOY_")]
    print(f"\nrecovered {hits}/{len(truth)} planted genes; "
          f"{len(decoy_features)} decoy features (false annotations)")
    print(f"modelled run time: {result.total_seconds:.2f}s "
          f"(step2 on PSC array: {result.accel_seconds * 1e3:.1f}ms)")
    assert hits == len(truth), "annotation missed a planted gene"
    assert not decoy_features, "decoy protein produced a feature"


if __name__ == "__main__":
    main()
