"""Quickstart: compare a protein bank against a genome, three ways.

Builds a small synthetic workload with known planted homologies, then runs

1. the software seed pipeline (the paper's algorithm, steps 1-3),
2. the RASC-100-accelerated pipeline (step 2 on the simulated PSC array),
3. the NCBI-tblastn-like baseline,

and shows that all three find the planted genes, with the accelerated run
bit-identical to the software run plus a modelled timing decomposition.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baseline import TblastnSearch
from repro.core import SeedComparisonPipeline
from repro.rasc import AcceleratedPipeline
from repro.seqs import Sequence, SequenceBank, make_family, plant_homologs, random_genome


def main() -> None:
    rng = np.random.default_rng(2009)

    # --- workload: 4 protein families planted into a 100 knt genome -----
    families = [
        make_family(rng, fam_id, length=180, n_members=2, identity_range=(0.6, 0.85))
        for fam_id in range(4)
    ]
    genome = random_genome(rng, 100_000, name="toy_chromosome")
    genome, truth = plant_homologs(rng, genome, families)
    queries = SequenceBank(
        [Sequence(f"family{f.family_id}", f.ancestor) for f in families]
    )
    print(f"workload: {len(queries)} queries vs {len(genome):,} nt genome, "
          f"{len(truth)} planted homologs\n")

    # --- 1. software pipeline -------------------------------------------
    pipeline = SeedComparisonPipeline()
    report = pipeline.compare_with_genome(queries, genome)
    print(f"[software ] {len(report)} alignments "
          f"({report.n_seed_pairs:,} seed pairs -> "
          f"{report.n_ungapped_hits} ungapped hits -> "
          f"{report.n_gapped_extensions} gapped extensions)")
    for a in report.best(5):
        print(f"    {a.seq0_name:>8} vs {a.seq1_name:<22} "
              f"[{a.start1:>6}:{a.end1:<6}] bits={a.bit_score:6.1f} "
              f"E={a.evalue:.1e}")

    # --- 2. RASC-100 accelerated pipeline --------------------------------
    accel = AcceleratedPipeline()
    result = accel.run(queries, genome)
    identical = [
        (a.seq0_name, a.start0, a.end0, a.raw_score) for a in report
    ] == [(a.seq0_name, a.start0, a.end0, a.raw_score) for a in result.report]
    hs = result.host_seconds
    print(f"\n[RASC-100 ] {len(result.report)} alignments "
          f"(identical to software: {identical})")
    print(f"    modelled timing: step1 {hs.step1:.3f}s (host) + "
          f"step2 {result.accel_seconds * 1e3:.2f}ms (PSC array) + "
          f"step3 {hs.step3:.3f}s (host)")
    run = result.accel_runs[0]
    print(f"    PSC: {run.breakdown.total_cycles:,} cycles @100MHz, "
          f"PE utilisation {run.breakdown.utilization:.1%}, "
          f"{len(run.hits)} results over NUMAlink")

    # --- 3. tblastn-like baseline ----------------------------------------
    baseline = TblastnSearch()
    bl_report = baseline.search_genome(queries, genome)
    print(f"\n[baseline ] {len(bl_report)} alignments "
          f"({baseline.stats.word_hits:,} word hits -> "
          f"{baseline.stats.triggers:,} two-hit triggers -> "
          f"{baseline.stats.gapped_extensions} gapped extensions)")

    # --- ground truth check ----------------------------------------------
    found = {a.seq0_name for a in report}
    print(f"\nfamilies recovered by the pipeline: {sorted(found)}")
    assert found == {f"family{f.family_id}" for f in families}
    print("all planted families found ✔")


if __name__ == "__main__":
    main()
