"""Capacity planning: how much accelerator does a workload deserve?

The paper's conclusion asks how future systems should split work between
cores and reconfigurable logic.  This example answers it for a concrete
workload using only the library's models — no simulation at scale:

1. index the banks and read the step-2 statistics that govern everything
   (list lengths, pair mass, skew);
2. sweep the PE-array size and find where utilisation collapses;
3. project blade-count scaling with the cluster model (dual-FPGA blades,
   multi-core hosts) and locate the point of diminishing returns.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.index import (
    DEFAULT_SUBSET_SEED,
    TwoBankIndex,
    index_stats,
    joint_stats,
    occupancy_curve,
)
from repro.rasc import BladeSpec, ClusterModel, HostCostModel
from repro.seqs import random_genome, random_protein_bank, translated_bank
from repro.util import TextTable


def main() -> None:
    rng = np.random.default_rng(2026)
    bank = random_protein_bank(rng, 400, mean_length=344, redundancy=0.2)
    genome = random_genome(rng, 500_000, name="target")
    frames = translated_bank(genome)
    index = TwoBankIndex.build(bank, frames, DEFAULT_SUBSET_SEED)

    print("== workload statistics ==")
    print("protein bank:", index_stats(index.index0).describe())
    print("join:", joint_stats(index).describe())
    print()

    t = TextTable(
        "PE-array sizing (one FPGA, 100 MHz)",
        ["PEs", "utilisation", "step-2 time"],
    )
    prev_time = None
    knee = None
    for pes, util, ms in occupancy_curve(index, pe_counts=(32, 64, 128, 192, 256)):
        t.add_row(pes, f"{util:.1%}", f"{ms:.1f} ms")
        if prev_time is not None and ms > 0.9 * prev_time and knee is None:
            knee = pes
        prev_time = ms
    t.add_note(f"diminishing returns set in around {knee or 256} PEs for this bank")
    print(t.render())
    print()

    host = HostCostModel()
    cm = ClusterModel(BladeSpec(host_cores=4), host, pair_overhead_cycles=2.9)
    k0s, k1s = index.list_length_pairs()
    t2 = TextTable(
        "blade scaling (2 FPGAs + 4 cores per blade)",
        ["blades", "wall time", "speedup", "parallel efficiency"],
    )
    base = None
    for n in (1, 2, 4, 8, 16):
        p = cm.project(
            n, k0s, k1s, bank.total_residues, frames.total_residues,
            step3_cells=10**7, n_alignments=50_000,
        )
        if base is None:
            base = p.wall_seconds
        speed = base / p.wall_seconds
        t2.add_row(n, f"{p.wall_seconds * 1e3:.1f} ms", f"{speed:.2f}×",
                   f"{speed / n:.0%}")
    t2.add_note("replicated genome indexing caps scaling — shard the genome")
    t2.add_note("side too once bank sharding saturates")
    print(t2.render())


if __name__ == "__main__":
    main()
