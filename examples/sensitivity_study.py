"""Sensitivity study: seed design vs detection limit (paper §4.4).

Sweeps homolog identity from easy to impossible and measures, for the
seed pipeline and the BLAST-like baseline, the fraction of planted
homologs recovered — a hands-on version of the paper's ROC50 comparison,
showing *where* the two seeding heuristics separate.

Run:  python examples/sensitivity_study.py
"""

from __future__ import annotations

import numpy as np

from repro.baseline import TblastnSearch
from repro.core import SeedComparisonPipeline
from repro.eval import build_benchmark
from repro.util import TextTable


def recovery_at(identity: float, n_families: int = 8, seed: int = 7):
    """Fraction of planted homologs found by each engine at one identity."""
    bench = build_benchmark(
        seed=seed,
        n_families=n_families,
        queries_per_family=2,
        plants_per_family=2,
        genome_length=150_000,
        query_identity=(identity, identity),
        plant_identity=(identity, identity),
    )
    runs = {
        "pipeline": bench.score_engine(
            "pipeline", lambda q, g: SeedComparisonPipeline().compare_with_genome(q, g)
        ),
        "baseline": bench.score_engine(
            "baseline", lambda q, g: TblastnSearch().search_genome(q, g)
        ),
    }
    return {name: run.roc50 for name, run in runs.items()}


def main() -> None:
    table = TextTable(
        "homolog recovery (ROC50) vs per-channel identity",
        ["identity / channel", "≈ pairwise id", "seed pipeline", "BLAST-like"],
    )
    for identity in (0.9, 0.75, 0.6, 0.5, 0.4, 0.3):
        scores = recovery_at(identity)
        pairwise = identity * identity + (1 - identity) ** 2 * 0.06
        table.add_row(
            f"{identity:.2f}",
            f"{pairwise:.2f}",
            f"{scores['pipeline']:.2f}",
            f"{scores['baseline']:.2f}",
        )
    table.add_note("queries and plants mutate independently from the ancestor,")
    table.add_note("so pairwise identity is roughly the product of the channels")
    print(table.render())
    print()
    print("reading: both engines track each other until deep twilight,")
    print("matching the paper's Table 6 similarity claim; below ~25% pairwise")
    print("identity neither heuristic can seed an alignment.")


if __name__ == "__main__":
    main()
