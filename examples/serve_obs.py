"""End-to-end observability drill: the CI ``obs-serve`` job's driver.

Boots a real ``repro-psc serve`` process with request tracing, a trace
spool directory and a pinned chaos plan (one pool death, one injected
shed), drives it over HTTP with client-minted request ids, and asserts
the per-request observability contract from the *outside*:

1. every response carries the client's ``X-Request-Id`` back (including
   the shed 429), and the load summary reports zero id mismatches;
2. every *non-shed* request's ``/debug/trace/<id>`` document validates
   against ``schemas/request_trace.schema.json`` and is one complete
   span tree — exactly one root, zero orphans — even for the request
   whose warm pool was killed under it;
3. ``/debug/requests`` validates against
   ``schemas/flight_record.schema.json``, joins to the client's ids, and
   counts the pool-death retry and the injected shed;
4. SIGTERM drains cleanly, spooling per-request traces and the flight
   dump into ``--trace-dir``.

Run:  PYTHONPATH=src python examples/serve_obs.py [--port N]
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DATA = REPO / "examples" / "data" / "demo_proteins.fasta"
SCHEMAS = REPO / "schemas"

#: Pinned chaos plan: the pool dies under request 1, request 3 is shed.
FAULT_PLAN = {
    "seed": 20260808,
    "specs": [
        {"kind": "pool-death", "request": 1},
        {"kind": "queue-overflow", "request": 3},
    ],
}

REQUESTS = 6


def get_json(port: int, path: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as resp:
        return json.loads(resp.read())


def wait_ready(port: int, proc: subprocess.Popen, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"server exited early with {proc.returncode}")
        try:
            if get_json(port, "/readyz").get("ready"):
                return
        except OSError:
            time.sleep(0.2)
    raise SystemExit("server never became ready")


def validate(path: Path, kind: str, schema: str) -> None:
    subprocess.run(
        [
            sys.executable, "-m", "repro.obs.export", str(path),
            "--kind", kind, "--schema", str(SCHEMAS / schema),
        ],
        check=True, cwd=REPO,
    )


def span_tree_shape(spans: list[dict]) -> tuple[list[str], int]:
    ids = {s["span_id"] for s in spans}
    roots = [s["name"] for s in spans if s["parent_id"] is None]
    orphans = [
        s for s in spans if s["parent_id"] is not None and s["parent_id"] not in ids
    ]
    return roots, len(orphans)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8642)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="serve-obs") as tmp:
        tmp_path = Path(tmp)
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(FAULT_PLAN))
        trace_dir = tmp_path / "traces"
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(DATA),
                "--port", str(args.port), "--workers", "2",
                "--fault-plan", str(plan_path),
                "--trace-dir", str(trace_dir),
            ],
            cwd=REPO,
        )
        try:
            wait_ready(args.port, server)

            # Phase 1: drive with client-minted ids; the big per-request
            # workload keeps every request on the warm pool so the
            # injected pool death actually lands under a request.
            out = tmp_path / "load.json"
            subprocess.run(
                [
                    sys.executable, "-m", "repro.serve.client",
                    "--port", str(args.port), "--fasta", str(DATA),
                    "--requests", str(REQUESTS), "--per-request", "6",
                    "--concurrency", "1", "--out", str(out),
                ],
                check=True, cwd=REPO,
            )
            summary = json.loads(out.read_text())
            assert summary["served"] == REQUESTS - 1, summary
            assert summary["shed"] == 1, summary
            assert summary["errors"] == 0, summary
            assert summary["id_mismatches"] == 0, summary
            by_status = {
                r["http_status"]: r["request_id"] for r in summary["results"]
            }
            assert set(by_status) == {200, 429}, sorted(by_status)
            print("phase 1 ok: ids echoed on every response, shed included")

            # Phase 2: every served request's trace document is one
            # complete span tree, fetched by the id the client minted.
            retried = 0
            for record in summary["results"]:
                if record["http_status"] != 200:
                    continue
                request_id = record["request_id"]
                doc = get_json(args.port, f"/debug/trace/{request_id}")
                doc_path = tmp_path / f"trace-{request_id}.json"
                doc_path.write_text(json.dumps(doc))
                validate(doc_path, "request-trace", "request_trace.schema.json")
                roots, orphans = span_tree_shape(doc["spans"])
                assert roots == ["serve.request"], (request_id, roots)
                assert orphans == 0, (request_id, orphans)
                retried += sum(
                    1
                    for s in doc["spans"]
                    for e in s["events"]
                    if e["name"] == "step2.retry"
                )
            assert retried >= 1, "the pool death never produced a retry event"
            print(f"phase 2 ok: {REQUESTS - 1} complete span trees, "
                  f"{retried} retry event(s) recorded")

            # Phase 3: the flight recorder joins to the same ids and
            # counts the chaos the plan injected.
            flight_path = tmp_path / "flight.json"
            flight_path.write_text(json.dumps(
                get_json(args.port, "/debug/requests")
            ))
            validate(flight_path, "flight-records", "flight_record.schema.json")
            flight = json.loads(flight_path.read_text())
            by_id = {r["request_id"]: r for r in flight["records"]}
            client_ids = {r["request_id"] for r in summary["results"]}
            assert client_ids <= set(by_id), "flight records missed requests"
            shed_record = by_id[by_status[429]]
            assert shed_record["status"] == "shed", shed_record
            assert shed_record["shed_reason"] == "injected", shed_record
            assert sum(r["retry_events"] for r in by_id.values()) >= 1
            assert "slo" in flight and "burn_rates" in flight["slo"]
            print("phase 3 ok: flight records join client ids, "
                  "retry + shed accounted")
        finally:
            if server.poll() is None:
                server.send_signal(signal.SIGTERM)
            rc = server.wait(timeout=60)
        assert rc == 0, f"server exited {rc} after SIGTERM"

        # Phase 4: the drain spooled traces and the flight dump to disk.
        spooled = sorted(trace_dir.glob("trace-*.json"))
        assert len(spooled) == REQUESTS - 1, [p.name for p in spooled]
        validate(spooled[0], "request-trace", "request_trace.schema.json")
        dump = trace_dir / "flight_records.json"
        assert dump.exists(), "drain never dumped the flight recorder"
        validate(dump, "flight-records", "flight_record.schema.json")
        print("phase 4 ok: clean drain, traces spooled, flight dumped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
