"""Short-read protein mapping — the paper's SRS motivation.

The introduction motivates the system with next-generation sequencing:
"the short read sequencing (SRS) technology … opens the door to new
possibilities" like metagenomic annotation, where millions of short DNA
reads must be compared against protein references.  This example plays a
miniature metagenomic scenario:

1. a reference bank of known protein families is built;
2. short DNA reads (150 nt, error-prone) are sampled from genes that are
   *divergent relatives* of those families, plus contamination reads from
   random background;
3. every read is mapped with the BLASTX mode (6-frame translated read vs
   protein bank) and assigned to the best-matching family;
4. assignment accuracy and contamination rejection are reported.

Run:  python examples/read_mapping.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BlastFamilySearch, PipelineConfig
from repro.seqs import (
    DNA,
    Sequence,
    SequenceBank,
    make_family,
    mutate_protein,
    random_genome,
    reverse_translate,
)


def make_reads(rng, families, n_reads=60, read_nt=150, contamination=0.25):
    """Sample reads from divergent gene copies + background contamination."""
    reads, truth = [], []
    genes = []
    for fam in families:
        divergent = mutate_protein(rng, fam.ancestor, identity=0.7)
        genes.append((fam.family_id, reverse_translate(rng, divergent)))
    for r in range(n_reads):
        if rng.random() < contamination:
            nt = random_genome(rng, read_nt).codes
            truth.append(-1)  # contamination
        else:
            fam_id, gene = genes[int(rng.integers(len(genes)))]
            start = int(rng.integers(0, max(1, len(gene) - read_nt)))
            nt = gene[start : start + read_nt].copy()
            # Sequencing errors: ~1 % random substitutions.
            errs = rng.random(len(nt)) < 0.01
            nt[errs] = rng.integers(0, 4, int(errs.sum())).astype(nt.dtype)
            truth.append(fam_id)
        reads.append(Sequence(f"read{r:04d}", nt, DNA))
    return SequenceBank(reads, DNA, pad=8), truth


def main() -> None:
    rng = np.random.default_rng(1337)
    families = [make_family(rng, i, 260, 0) for i in range(6)]
    reference = SequenceBank(
        [Sequence(f"FAM{f.family_id}", f.ancestor) for f in families]
    )
    reads, truth = make_reads(rng, families)
    n_real = sum(1 for t in truth if t >= 0)
    print(f"mapping {len(reads)} reads (150 nt, {len(reads) - n_real} "
          f"contaminant) against {len(reference)} protein families\n")

    search = BlastFamilySearch(PipelineConfig(max_evalue=1e-4))
    report = search.blastx(reads, reference)

    # Best family per read (reads appear as "<read>|frame±K" on seq0 side).
    assigned: dict[str, tuple[str, float]] = {}
    for a in report:
        read = a.seq0_name.rsplit("|frame", 1)[0]
        if read not in assigned or a.evalue < assigned[read][1]:
            assigned[read] = (a.seq1_name, a.evalue)

    correct = wrong = missed = false_hits = 0
    for r, t in enumerate(truth):
        name = f"read{r:04d}"
        hit = assigned.get(name)
        if t < 0:
            false_hits += hit is not None
        elif hit is None:
            missed += 1
        elif hit[0] == f"FAM{t}":
            correct += 1
        else:
            wrong += 1

    print(f"assigned correctly : {correct}/{n_real}")
    print(f"assigned wrongly   : {wrong}/{n_real}")
    print(f"unmapped real reads: {missed}/{n_real}")
    print(f"contaminant hits   : {false_hits}/{len(reads) - n_real}")
    accuracy = correct / max(1, correct + wrong)
    print(f"\nprecision among assigned reads: {accuracy:.0%}")
    assert accuracy > 0.9
    assert false_hits == 0


if __name__ == "__main__":
    main()
