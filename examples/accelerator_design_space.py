"""Accelerator design-space exploration with the PSC simulator.

The paper notes the PSC control "is independent of the number of PEs",
letting the same design target different array sizes — and its results
show array efficiency depends strongly on the workload's index-list
statistics.  This example uses the cycle-exact behavioural model to sweep
PE count × bank size and prints the efficiency surface, reproducing the
paper's central hardware insight: *big arrays only pay off on big banks*.

It also runs one configuration on the true cycle-level simulator (every
PE a real datapath object) and verifies the behavioural model matches it
cycle for cycle — the validation story §3.1 describes ("a single PE can
be used first for simulation […] then gradually the number of PEs can be
increased").

Run:  python examples/accelerator_design_space.py
"""

from __future__ import annotations

import numpy as np

from repro.index import TwoBankIndex, DEFAULT_SUBSET_SEED
from repro.psc import PscArrayConfig, PscBehavioral, PscOperator, build_jobs
from repro.seqs import random_protein_bank
from repro.util import TextTable


def make_index(n_proteins: int, rng_seed: int = 1):
    rng = np.random.default_rng(rng_seed)
    bank0 = random_protein_bank(rng, n_proteins, mean_length=250, name_prefix="q")
    bank1 = random_protein_bank(rng, 4 * n_proteins, mean_length=250, name_prefix="s")
    return TwoBankIndex.build(bank0, bank1, DEFAULT_SUBSET_SEED)


def main() -> None:
    flank = 12
    window = DEFAULT_SUBSET_SEED.span + 2 * flank

    # --- efficiency surface ----------------------------------------------
    table = TextTable(
        "PE-array efficiency vs bank size (behavioural model)",
        ["bank (proteins)", "pairs"]
        + [f"{p} PEs: time / util" for p in (16, 64, 192)],
    )
    for n_proteins in (50, 200, 800):
        index = make_index(n_proteins)
        row = [str(n_proteins), f"{index.total_pairs:,}"]
        for pes in (16, 64, 192):
            cfg = PscArrayConfig(n_pes=pes, window=window, threshold=40)
            breakdown = PscBehavioral(cfg).estimate(index)
            row.append(
                f"{cfg.seconds(breakdown.total_cycles) * 1e3:7.2f} ms / "
                f"{breakdown.utilization:5.1%}"
            )
        table.add_row(*row)
    table.add_note("utilisation collapses when index lists are shorter than the array")
    print(table.render())
    print()

    # --- cycle-level cross-validation -------------------------------------
    index = make_index(40)
    cfg = PscArrayConfig(n_pes=24, slot_size=8, window=window, threshold=40)
    jobs = list(build_jobs(index, flank, window))
    cycle_run = PscOperator(cfg).run(jobs)
    behav_run = PscBehavioral(cfg).run(jobs)
    print("cycle-level vs behavioural cross-check (24 real PE datapaths):")
    print(f"  hits:   {len(cycle_run)} vs {len(behav_run)}  "
          f"identical={np.array_equal(cycle_run.scores, behav_run.scores)}")
    print(f"  cycles: {cycle_run.breakdown.total_cycles:,} vs "
          f"{behav_run.breakdown.total_cycles:,}  "
          f"identical={cycle_run.breakdown == behav_run.breakdown}")
    assert cycle_run.breakdown == behav_run.breakdown
    assert np.array_equal(cycle_run.offsets0, behav_run.offsets0)
    print("behavioural model is cycle-exact ✔")


if __name__ == "__main__":
    main()
